package rewrite

import "repro/internal/rpq"

// Matches reports whether the word (a sequence of steps) belongs to the
// regular language of e. It is an independent reference implementation —
// a straightforward backtracking matcher over the AST — used by tests to
// validate Normalize: every disjunct produced by Normalize must match, and
// every short word that matches must appear among the disjuncts.
//
// Unbounded repetitions are matched natively (no star bound needed): a
// word of length n can never require more than n+1 iterations of a
// repetition body, because empty iterations contribute nothing.
func Matches(e rpq.Expr, word []rpq.Step) bool {
	ends := matchFrom(e, word, 0)
	for _, end := range ends {
		if end == len(word) {
			return true
		}
	}
	return false
}

// matchFrom returns the distinct positions reachable by matching e
// against word starting at pos.
func matchFrom(e rpq.Expr, word []rpq.Step, pos int) []int {
	switch v := e.(type) {
	case rpq.Epsilon:
		return []int{pos}
	case rpq.Step:
		if pos < len(word) && word[pos] == v {
			return []int{pos + 1}
		}
		return nil
	case rpq.Union:
		set := map[int]bool{}
		for _, a := range v.Alts {
			for _, end := range matchFrom(a, word, pos) {
				set[end] = true
			}
		}
		return keys(set)
	case rpq.Concat:
		current := map[int]bool{pos: true}
		for _, part := range v.Parts {
			next := map[int]bool{}
			for p := range current {
				for _, end := range matchFrom(part, word, p) {
					next[end] = true
				}
			}
			if len(next) == 0 {
				return nil
			}
			current = next
		}
		return keys(current)
	case rpq.Repeat:
		// frontier holds positions reachable after exactly i iterations.
		frontier := map[int]bool{pos: true}
		result := map[int]bool{}
		if v.Min == 0 {
			result[pos] = true
		}
		maxIter := v.Max
		if maxIter == rpq.Unbounded {
			// len(word)-pos+1 iterations suffice: each productive
			// iteration consumes at least one symbol, and repeating
			// ε-only iterations reaches no new positions.
			maxIter = len(word) - pos + 1
			if maxIter < v.Min {
				maxIter = v.Min
			}
		}
		for i := 1; i <= maxIter; i++ {
			next := map[int]bool{}
			for p := range frontier {
				for _, end := range matchFrom(v.Sub, word, p) {
					next[end] = true
				}
			}
			if len(next) == 0 {
				break
			}
			// Stop early if the frontier stopped growing (pure ε loops).
			same := len(next) == len(frontier)
			if same {
				for p := range next {
					if !frontier[p] {
						same = false
						break
					}
				}
			}
			frontier = next
			if i >= v.Min {
				for p := range frontier {
					result[p] = true
				}
			}
			if same && i >= v.Min {
				break
			}
		}
		return keys(result)
	default:
		return nil
	}
}

func keys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
