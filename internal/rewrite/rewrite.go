// Package rewrite implements the first two steps of RPQ processing from
// Fletcher, Peters & Poulovassilis (EDBT 2016), Section 4: bounded
// recursion is expanded into unions of compositions, and all unions are
// pulled up to the top level, producing a semantically equivalent query
// that is a union of label paths (plus possibly the identity ε).
//
// Expansion is exponential in the worst case, so Normalize enforces
// configurable limits on the number of disjuncts and on path length and
// fails cleanly when a query exceeds them.
package rewrite

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/rpq"
)

// Path is a label path: a non-empty sequence of forward or inverse label
// steps. The empty Path represents ε inside this package's computations
// but is never returned as a disjunct (see Normal.HasEpsilon).
type Path []rpq.Step

// String renders the path in parser syntax, e.g. "knows/worksFor^-".
func (p Path) String() string {
	parts := make([]string, len(p))
	for i, s := range p {
		parts[i] = s.String()
	}
	return strings.Join(parts, "/")
}

// Key returns a canonical map key for the path.
func (p Path) Key() string { return p.String() }

// Inverse returns the inverse path p⁻: the reversed sequence with each
// step's direction flipped, so that (a,b) ∈ p(G) iff (b,a) ∈ p⁻(G). For
// example (ℓ1∘ℓ2)⁻ = ℓ2⁻∘ℓ1⁻.
func (p Path) Inverse() Path {
	inv := make(Path, len(p))
	for i, s := range p {
		inv[len(p)-1-i] = rpq.Step{Label: s.Label, Inverse: !s.Inverse}
	}
	return inv
}

// Equal reports whether p and q are the same step sequence.
func (p Path) Equal(q Path) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Concat returns the concatenation p ∘ q as a fresh path.
func (p Path) Concat(q Path) Path {
	out := make(Path, 0, len(p)+len(q))
	out = append(out, p...)
	out = append(out, q...)
	return out
}

// Normal is a query in union normal form: a union of label-path disjuncts,
// plus an optional ε disjunct. Disjuncts are deduplicated and sorted by
// (length, text) for determinism.
type Normal struct {
	Paths      []Path
	HasEpsilon bool
}

// CanonicalKey returns a canonical textual key for the normal form:
// semantically equal queries — queries whose union-normal forms contain
// the same disjunct set and the same ε flag — map to identical keys,
// regardless of how the original expressions were written. Normalize
// already deduplicates disjuncts and sorts them by (length, text), so
// "a/b|c" and "c|a/b" share a key. The key doubles as the plan-cache
// lookup key and is itself parseable query syntax whose normal form is
// the same normal form it was derived from.
func (n Normal) CanonicalKey() string { return n.String() }

// TotalSteps returns the summed length of all disjuncts, a measure of the
// expanded query size.
func (n Normal) TotalSteps() int {
	total := 0
	for _, p := range n.Paths {
		total += len(p)
	}
	return total
}

func (n Normal) String() string {
	parts := make([]string, 0, len(n.Paths)+1)
	if n.HasEpsilon {
		parts = append(parts, "()")
	}
	for _, p := range n.Paths {
		parts = append(parts, p.String())
	}
	return strings.Join(parts, " | ")
}

// Options bounds the expansion.
type Options struct {
	// StarBound replaces the missing upper bound of unbounded repetitions
	// (R*, R+, R{i,}). The paper (Section 2.2) observes that for every
	// graph G there is an n(G) with R*(G) = R^{0,n(G)}(G); callers
	// typically pass the node count or a diameter bound. Zero means
	// unbounded repetitions are rejected.
	StarBound int
	// MaxDisjuncts caps the number of label-path disjuncts produced
	// (after deduplication of intermediate results). Zero means the
	// DefaultMaxDisjuncts limit.
	MaxDisjuncts int
	// MaxPathLength caps the length of any produced disjunct. Zero means
	// the DefaultMaxPathLength limit.
	MaxPathLength int
}

// Default expansion limits. They are generous for the workloads of the
// paper (whose expansions are tiny) while stopping adversarial queries
// like (a|b){20,20} from exhausting memory.
const (
	DefaultMaxDisjuncts  = 65536
	DefaultMaxPathLength = 512
)

// A LimitError reports that expansion exceeded Options limits.
type LimitError struct {
	What  string
	Limit int
}

func (e *LimitError) Error() string {
	return fmt.Sprintf("rewrite: expansion exceeds %s limit %d", e.What, e.Limit)
}

// pathSet is a deduplicated set of paths; the empty path represents ε.
type pathSet struct {
	paths []Path
	seen  map[string]bool
}

func newPathSet() *pathSet { return &pathSet{seen: map[string]bool{}} }

func (s *pathSet) add(p Path) {
	k := p.Key()
	if !s.seen[k] {
		s.seen[k] = true
		s.paths = append(s.paths, p)
	}
}

// Normalize rewrites e into union normal form.
func Normalize(e rpq.Expr, opts Options) (Normal, error) {
	if err := rpq.Validate(e); err != nil {
		return Normal{}, err
	}
	if opts.MaxDisjuncts == 0 {
		opts.MaxDisjuncts = DefaultMaxDisjuncts
	}
	if opts.MaxPathLength == 0 {
		opts.MaxPathLength = DefaultMaxPathLength
	}
	set, err := expand(e, opts)
	if err != nil {
		return Normal{}, err
	}
	var n Normal
	for _, p := range set.paths {
		if len(p) == 0 {
			n.HasEpsilon = true
			continue
		}
		n.Paths = append(n.Paths, p)
	}
	sort.Slice(n.Paths, func(i, j int) bool {
		if len(n.Paths[i]) != len(n.Paths[j]) {
			return len(n.Paths[i]) < len(n.Paths[j])
		}
		return n.Paths[i].Key() < n.Paths[j].Key()
	})
	return n, nil
}

func expand(e rpq.Expr, opts Options) (*pathSet, error) {
	switch v := e.(type) {
	case rpq.Epsilon:
		s := newPathSet()
		s.add(Path{})
		return s, nil
	case rpq.Step:
		s := newPathSet()
		s.add(Path{v})
		return s, nil
	case rpq.Union:
		out := newPathSet()
		for _, a := range v.Alts {
			sub, err := expand(a, opts)
			if err != nil {
				return nil, err
			}
			for _, p := range sub.paths {
				out.add(p)
			}
			if len(out.paths) > opts.MaxDisjuncts {
				return nil, &LimitError{What: "disjunct", Limit: opts.MaxDisjuncts}
			}
		}
		return out, nil
	case rpq.Concat:
		acc := newPathSet()
		acc.add(Path{})
		for _, part := range v.Parts {
			sub, err := expand(part, opts)
			if err != nil {
				return nil, err
			}
			acc, err = cross(acc, sub, opts)
			if err != nil {
				return nil, err
			}
		}
		return acc, nil
	case rpq.Repeat:
		max := v.Max
		if max == rpq.Unbounded {
			if opts.StarBound <= 0 {
				return nil, fmt.Errorf("rewrite: unbounded repetition %s requires a star bound (n(G))", e)
			}
			max = opts.StarBound
			if max < v.Min {
				max = v.Min
			}
		}
		sub, err := expand(v.Sub, opts)
		if err != nil {
			return nil, err
		}
		// power accumulates sub^i; out accumulates the union over
		// i ∈ [Min, max].
		power := newPathSet()
		power.add(Path{})
		out := newPathSet()
		if v.Min == 0 {
			out.add(Path{})
		}
		for i := 1; i <= max; i++ {
			power, err = cross(power, sub, opts)
			if err != nil {
				return nil, err
			}
			if i >= v.Min {
				for _, p := range power.paths {
					out.add(p)
				}
				if len(out.paths) > opts.MaxDisjuncts {
					return nil, &LimitError{What: "disjunct", Limit: opts.MaxDisjuncts}
				}
			}
			// If sub can only produce ε, further powers add nothing.
			if len(power.paths) == 1 && len(power.paths[0]) == 0 && i >= v.Min {
				break
			}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("rewrite: unknown expression type %T", e)
	}
}

// cross returns the pairwise concatenation of a and b under opts limits.
func cross(a, b *pathSet, opts Options) (*pathSet, error) {
	out := newPathSet()
	for _, pa := range a.paths {
		for _, pb := range b.paths {
			p := pa.Concat(pb)
			if len(p) > opts.MaxPathLength {
				return nil, &LimitError{What: "path length", Limit: opts.MaxPathLength}
			}
			out.add(p)
			if len(out.paths) > opts.MaxDisjuncts {
				return nil, &LimitError{What: "disjunct", Limit: opts.MaxDisjuncts}
			}
		}
	}
	return out, nil
}
