// Package rewrite implements the first two steps of RPQ processing from
// Fletcher, Peters & Poulovassilis (EDBT 2016), Section 4 — bounded
// recursion is expanded into unions of compositions and all unions are
// pulled up to the top level — extended with a star-factored normal
// form: unbounded repetitions (R*, R+, R{i,}) are NOT expanded into
// n(G)-bounded unions but kept as first-class Kleene-closure factors, so
// a query normalizes to a union of plain label paths plus closure
// sequences (and possibly the identity ε). The planner evaluates closure
// factors by fixpoint iteration (or a reachability index for the
// restricted single-step shapes), which is how related systems
// (Arroyuelo & Navarro; Abo Khamis et al.) treat closures, instead of
// the exponential disjunct expansion of the paper's prototype.
//
// Expansion of the bounded fragment is exponential in the worst case, so
// Normalize enforces configurable limits on the number of disjuncts and
// on path length and fails cleanly when a query exceeds them. The legacy
// behavior — bounding stars by n(G) and expanding them — survives behind
// Options.ExpandStars for ablation and differential testing.
package rewrite

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/rpq"
)

// Path is a label path: a non-empty sequence of forward or inverse label
// steps. The empty Path represents ε inside this package's computations
// but is never returned as a disjunct (see Normal.HasEpsilon).
type Path []rpq.Step

// String renders the path in parser syntax, e.g. "knows/worksFor^-".
func (p Path) String() string {
	parts := make([]string, len(p))
	for i, s := range p {
		parts[i] = s.String()
	}
	return strings.Join(parts, "/")
}

// Key returns a canonical map key for the path.
func (p Path) Key() string { return p.String() }

// Inverse returns the inverse path p⁻: the reversed sequence with each
// step's direction flipped, so that (a,b) ∈ p(G) iff (b,a) ∈ p⁻(G). For
// example (ℓ1∘ℓ2)⁻ = ℓ2⁻∘ℓ1⁻.
func (p Path) Inverse() Path {
	inv := make(Path, len(p))
	for i, s := range p {
		inv[len(p)-1-i] = rpq.Step{Label: s.Label, Inverse: !s.Inverse}
	}
	return inv
}

// Equal reports whether p and q are the same step sequence.
func (p Path) Equal(q Path) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Concat returns the concatenation p ∘ q as a fresh path.
func (p Path) Concat(q Path) Path {
	out := make(Path, 0, len(p)+len(q))
	out = append(out, p...)
	out = append(out, q...)
	return out
}

// Elem is one element of a star-factored sequence: either a fixed label
// path segment (Star == nil, Seg non-empty) or a Kleene closure over a
// union of body sequences (Star != nil, Seg empty). The closure includes
// zero iterations, i.e. its relation contains the identity.
type Elem struct {
	Seg  Path
	Star []Seq
}

// IsStar reports whether the element is a Kleene-closure factor.
func (e Elem) IsStar() bool { return e.Star != nil }

// String renders the element in parser syntax: a segment as the plain
// path, a closure as "(b1|…|bm)*".
func (e Elem) String() string {
	if !e.IsStar() {
		return e.Seg.String()
	}
	parts := make([]string, len(e.Star))
	for i, s := range e.Star {
		parts[i] = s.String()
	}
	return "(" + strings.Join(parts, "|") + ")*"
}

// Seq is one disjunct of the star-factored normal form: a concatenation
// of fixed segments and Kleene-closure factors. Adjacent segments are
// merged, so a sequence without closures has at most one element; the
// empty sequence represents ε (and, like the empty Path, never escapes
// Normalize — it becomes Normal.HasEpsilon).
type Seq struct {
	Elems []Elem
}

// String renders the sequence in parser syntax, e.g. "a/(b|c)*/d". The
// output reparses to an expression whose normal form contains exactly
// this sequence.
func (s Seq) String() string {
	parts := make([]string, len(s.Elems))
	for i, e := range s.Elems {
		parts[i] = e.String()
	}
	return strings.Join(parts, "/")
}

// Key returns a canonical map key for the sequence.
func (s Seq) Key() string { return s.String() }

// FixedSteps returns the number of steps in fixed segments (closure
// bodies are not counted): the sequence's contribution to the expanded
// query size subject to Options.MaxPathLength.
func (s Seq) FixedSteps() int {
	total := 0
	for _, e := range s.Elems {
		total += len(e.Seg)
	}
	return total
}

// TotalSteps returns the summed steps over segments and closure bodies
// (each body sequence counted once, recursively).
func (s Seq) TotalSteps() int {
	total := 0
	for _, e := range s.Elems {
		total += len(e.Seg)
		for _, b := range e.Star {
			total += b.TotalSteps()
		}
	}
	return total
}

// PureStar reports whether the sequence is a bare Kleene star — exactly
// one element, a closure factor with no fixed segments around it. The
// planner uses this as a closure-mode hint: a pure star's answer is
// every source's reach set, the shape the output-sensitive streaming
// evaluator is built for.
func (s Seq) PureStar() bool {
	return len(s.Elems) == 1 && s.Elems[0].IsStar()
}

// HasStar reports whether the sequence contains a closure factor.
func (s Seq) HasStar() bool {
	for _, e := range s.Elems {
		if e.IsStar() {
			return true
		}
	}
	return false
}

// pathSeq wraps a plain path as a single-segment sequence.
func pathSeq(p Path) Seq {
	if len(p) == 0 {
		return Seq{}
	}
	return Seq{Elems: []Elem{{Seg: p}}}
}

// concat returns the concatenation of two sequences, merging a segment
// boundary and collapsing adjacent identical closures (B* ∘ B* = B*).
func (s Seq) concat(t Seq) Seq {
	if len(s.Elems) == 0 {
		return t
	}
	if len(t.Elems) == 0 {
		return s
	}
	out := Seq{Elems: make([]Elem, 0, len(s.Elems)+len(t.Elems))}
	out.Elems = append(out.Elems, s.Elems...)
	for _, e := range t.Elems {
		last := &out.Elems[len(out.Elems)-1]
		switch {
		case !e.IsStar() && !last.IsStar():
			last.Seg = last.Seg.Concat(e.Seg)
		case e.IsStar() && last.IsStar() && last.String() == e.String():
			// idempotent: B*∘B* = B*
		default:
			out.Elems = append(out.Elems, e)
		}
	}
	return out
}

// Normal is a query in star-factored union normal form: a union of plain
// label-path disjuncts, closure-sequence disjuncts, and an optional ε
// disjunct. Disjuncts are deduplicated and sorted (paths by
// (length, text), sequences by (fixed steps, text)) for determinism.
type Normal struct {
	Paths []Path
	// Closures are the disjuncts containing at least one Kleene-closure
	// factor. A query without unbounded repetition has none.
	Closures   []Seq
	HasEpsilon bool
}

// CanonicalKey returns a canonical textual key for the normal form:
// semantically equal queries — queries whose star-factored normal forms
// contain the same disjunct set and the same ε flag — map to identical
// keys, regardless of how the original expressions were written.
// Normalize already deduplicates disjuncts and sorts them, so "a/b|c"
// and "c|a/b" share a key, as do "a*" and "(a)*". The key doubles as the
// plan-cache lookup key and is itself parseable query syntax whose
// normal form is the same normal form it was derived from.
func (n Normal) CanonicalKey() string { return n.String() }

// TotalSteps returns the summed length of all disjuncts (closure bodies
// counted once), a measure of the expanded query size.
func (n Normal) TotalSteps() int {
	total := 0
	for _, p := range n.Paths {
		total += len(p)
	}
	for _, s := range n.Closures {
		total += s.TotalSteps()
	}
	return total
}

func (n Normal) String() string {
	parts := make([]string, 0, len(n.Paths)+len(n.Closures)+1)
	if n.HasEpsilon {
		parts = append(parts, "()")
	}
	for _, p := range n.Paths {
		parts = append(parts, p.String())
	}
	for _, s := range n.Closures {
		parts = append(parts, s.String())
	}
	return strings.Join(parts, " | ")
}

// Options bounds the expansion.
type Options struct {
	// StarBound replaces the missing upper bound of unbounded repetitions
	// (R*, R+, R{i,}) when ExpandStars is set. The paper (Section 2.2)
	// observes that for every graph G there is an n(G) with
	// R*(G) = R^{0,n(G)}(G); callers typically pass the node count or a
	// diameter bound. In the default star-factored mode this field is
	// unused: closures are kept symbolic and evaluated by fixpoint
	// iteration, so no bound is needed.
	StarBound int
	// ExpandStars restores the legacy rewrite of unbounded repetitions
	// into StarBound-bounded unions (the paper's prototype behavior).
	// With it set, StarBound must be positive for queries containing
	// unbounded repetition. Kept as an ablation and as the baseline for
	// the closure differential tests and the star benchmark.
	ExpandStars bool
	// MaxDisjuncts caps the number of disjuncts produced (after
	// deduplication of intermediate results). Zero means the
	// DefaultMaxDisjuncts limit.
	MaxDisjuncts int
	// MaxPathLength caps the number of fixed steps of any produced
	// disjunct (closure bodies are capped at their own level). Zero
	// means the DefaultMaxPathLength limit.
	MaxPathLength int
	// MaxTotalSteps caps the total expanded size of the normal form:
	// the summed steps over every produced disjunct (closure bodies
	// included). The per-disjunct and disjunct-count limits alone do
	// not compose into a memory bound — a StarBound-expanded
	// multi-label star can sit just under MaxDisjuncts with long
	// disjuncts, "succeeding" into an expansion whose downstream
	// operator tree is gigabytes — so the total is capped on its own.
	// Zero means the DefaultMaxTotalSteps limit.
	MaxTotalSteps int
}

// Default expansion limits. They are generous for the workloads of the
// paper (whose expansions are tiny) while stopping adversarial queries
// like (a|b){20,20} from exhausting memory.
const (
	DefaultMaxDisjuncts  = 65536
	DefaultMaxPathLength = 512
	DefaultMaxTotalSteps = 1 << 18
)

// A LimitError reports that expansion exceeded Options limits.
type LimitError struct {
	What  string // "disjunct" or "path length"
	Limit int
	// Frag is the offending subexpression (query syntax): the innermost
	// expression whose expansion overflowed the limit.
	Frag string
	// Option names the Options field to raise to admit the query.
	Option string
}

func (e *LimitError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "rewrite: expansion exceeds %s limit %d", e.What, e.Limit)
	if e.Frag != "" {
		fmt.Fprintf(&b, " while expanding %q", e.Frag)
	}
	if e.Option != "" {
		fmt.Fprintf(&b, " (raise Options.%s or simplify the subexpression)", e.Option)
	}
	return b.String()
}

// annotate records e as the offending fragment of a LimitError that does
// not yet carry one, so the error names the innermost subexpression that
// overflowed rather than the whole query.
func annotate(err error, e rpq.Expr) error {
	var le *LimitError
	if errors.As(err, &le) && le.Frag == "" {
		le.Frag = e.String()
	}
	return err
}

// seqSet is a deduplicated ordered set of sequences; the empty sequence
// represents ε. steps tracks the summed TotalSteps of the members — the
// expanded size subject to Options.MaxTotalSteps.
type seqSet struct {
	seqs  []Seq
	seen  map[string]bool
	steps int
}

func newSeqSet() *seqSet { return &seqSet{seen: map[string]bool{}} }

func (s *seqSet) add(q Seq) {
	k := q.Key()
	if !s.seen[k] {
		s.seen[k] = true
		s.seqs = append(s.seqs, q)
		s.steps += q.TotalSteps()
	}
}

// limitCheck reports whether s exceeds the expansion limits, returning
// the error to surface (disjunct count first, then total size). It is
// consulted at every accumulation point, so the error fires as soon as
// a set crosses a limit — well before the expansion (or the operator
// tree built from it) grows to a problematic allocation.
func limitCheck(s *seqSet, opts Options) error {
	if len(s.seqs) > opts.MaxDisjuncts {
		return &LimitError{What: "disjunct", Limit: opts.MaxDisjuncts, Option: "MaxDisjuncts"}
	}
	if s.steps > opts.MaxTotalSteps {
		return &LimitError{What: "total step", Limit: opts.MaxTotalSteps, Option: "MaxTotalSteps"}
	}
	return nil
}

// Normalize rewrites e into star-factored union normal form.
func Normalize(e rpq.Expr, opts Options) (Normal, error) {
	if err := rpq.Validate(e); err != nil {
		return Normal{}, err
	}
	if opts.MaxDisjuncts == 0 {
		opts.MaxDisjuncts = DefaultMaxDisjuncts
	}
	if opts.MaxPathLength == 0 {
		opts.MaxPathLength = DefaultMaxPathLength
	}
	if opts.MaxTotalSteps == 0 {
		opts.MaxTotalSteps = DefaultMaxTotalSteps
	}
	set, err := expand(e, opts)
	if err != nil {
		return Normal{}, err
	}
	var n Normal
	for _, s := range set.seqs {
		switch {
		case len(s.Elems) == 0:
			n.HasEpsilon = true
		case len(s.Elems) == 1 && !s.Elems[0].IsStar():
			n.Paths = append(n.Paths, s.Elems[0].Seg)
		default:
			n.Closures = append(n.Closures, s)
		}
	}
	sort.Slice(n.Paths, func(i, j int) bool {
		if len(n.Paths[i]) != len(n.Paths[j]) {
			return len(n.Paths[i]) < len(n.Paths[j])
		}
		return n.Paths[i].Key() < n.Paths[j].Key()
	})
	sort.Slice(n.Closures, func(i, j int) bool {
		si, sj := n.Closures[i], n.Closures[j]
		if si.FixedSteps() != sj.FixedSteps() {
			return si.FixedSteps() < sj.FixedSteps()
		}
		return si.Key() < sj.Key()
	})
	return n, nil
}

func expand(e rpq.Expr, opts Options) (*seqSet, error) {
	switch v := e.(type) {
	case rpq.Epsilon:
		s := newSeqSet()
		s.add(Seq{})
		return s, nil
	case rpq.Step:
		s := newSeqSet()
		s.add(pathSeq(Path{v}))
		return s, nil
	case rpq.Union:
		out := newSeqSet()
		for _, a := range v.Alts {
			sub, err := expand(a, opts)
			if err != nil {
				return nil, err
			}
			for _, q := range sub.seqs {
				out.add(q)
			}
			if err := limitCheck(out, opts); err != nil {
				return nil, annotate(err, e)
			}
		}
		return out, nil
	case rpq.Concat:
		acc := newSeqSet()
		acc.add(Seq{})
		for _, part := range v.Parts {
			sub, err := expand(part, opts)
			if err != nil {
				return nil, err
			}
			acc, err = cross(acc, sub, opts)
			if err != nil {
				return nil, annotate(err, e)
			}
		}
		return acc, nil
	case rpq.Repeat:
		if v.Max == rpq.Unbounded && !opts.ExpandStars {
			return expandClosure(v, opts)
		}
		max := v.Max
		if max == rpq.Unbounded {
			if opts.StarBound <= 0 {
				return nil, fmt.Errorf("rewrite: unbounded repetition %s requires a star bound (n(G)) when Options.ExpandStars is set", e)
			}
			max = opts.StarBound
			if max < v.Min {
				max = v.Min
			}
		}
		sub, err := expand(v.Sub, opts)
		if err != nil {
			return nil, err
		}
		// power accumulates sub^i; out accumulates the union over
		// i ∈ [Min, max].
		power := newSeqSet()
		power.add(Seq{})
		out := newSeqSet()
		if v.Min == 0 {
			out.add(Seq{})
		}
		for i := 1; i <= max; i++ {
			power, err = cross(power, sub, opts)
			if err != nil {
				return nil, annotate(err, e)
			}
			if i >= v.Min {
				for _, q := range power.seqs {
					out.add(q)
				}
				if err := limitCheck(out, opts); err != nil {
					return nil, annotate(err, e)
				}
			}
			// If sub can only produce ε, further powers add nothing.
			if len(power.seqs) == 1 && len(power.seqs[0].Elems) == 0 && i >= v.Min {
				break
			}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("rewrite: unknown expression type %T", e)
	}
}

// expandClosure rewrites an unbounded repetition R{m,} into the factored
// form R^m ∘ (body)*, where body is R's own expansion flattened by the
// closure identities (B ∪ ε)* = B* and (P ∪ C*)* = (P ∪ C)*. The body
// may itself contain closure factors (nested stars that do not flatten,
// e.g. (a/b*)*), which the evaluator handles by nested fixpoints.
func expandClosure(v rpq.Repeat, opts Options) (*seqSet, error) {
	sub, err := expand(v.Sub, opts)
	if err != nil {
		return nil, err
	}
	body := newSeqSet()
	for _, q := range sub.seqs {
		switch {
		case len(q.Elems) == 0:
			// ε iterations contribute nothing: (R|())* = R*.
		case len(q.Elems) == 1 && q.Elems[0].IsStar():
			// (P|C*)* = (P|C)*: splice the nested closure's body.
			for _, b := range q.Elems[0].Star {
				body.add(b)
			}
		default:
			body.add(q)
		}
		if err := limitCheck(body, opts); err != nil {
			return nil, annotate(err, v)
		}
	}
	out := newSeqSet()
	if len(body.seqs) == 0 {
		// Star over an ε-only body is the identity.
		out.add(Seq{})
		return out, nil
	}
	// Body order is part of the canonical form: sort like disjuncts.
	sort.Slice(body.seqs, func(i, j int) bool {
		bi, bj := body.seqs[i], body.seqs[j]
		if bi.FixedSteps() != bj.FixedSteps() {
			return bi.FixedSteps() < bj.FixedSteps()
		}
		return bi.Key() < bj.Key()
	})
	star := newSeqSet()
	star.add(Seq{Elems: []Elem{{Star: body.seqs}}})
	if v.Min == 0 {
		return star, nil
	}
	// R{m,} = R^m ∘ R*: expand the mandatory prefix like a bounded
	// repetition and append the closure factor.
	prefix := newSeqSet()
	prefix.add(Seq{})
	for i := 0; i < v.Min; i++ {
		prefix, err = cross(prefix, sub, opts)
		if err != nil {
			return nil, annotate(err, v)
		}
	}
	out, err = cross(prefix, star, opts)
	if err != nil {
		return nil, annotate(err, v)
	}
	return out, nil
}

// cross returns the pairwise concatenation of a and b under opts limits.
func cross(a, b *seqSet, opts Options) (*seqSet, error) {
	out := newSeqSet()
	for _, qa := range a.seqs {
		for _, qb := range b.seqs {
			q := qa.concat(qb)
			if q.FixedSteps() > opts.MaxPathLength {
				return nil, &LimitError{What: "path length", Limit: opts.MaxPathLength, Option: "MaxPathLength"}
			}
			out.add(q)
			if err := limitCheck(out, opts); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}
