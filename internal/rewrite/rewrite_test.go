package rewrite

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rpq"
)

func norm(t *testing.T, query string, opts Options) Normal {
	t.Helper()
	n, err := Normalize(rpq.MustParse(query), opts)
	if err != nil {
		t.Fatalf("Normalize(%q): %v", query, err)
	}
	return n
}

func pathStrings(n Normal) []string {
	out := make([]string, len(n.Paths))
	for i, p := range n.Paths {
		out[i] = p.String()
	}
	return out
}

func TestWorkedExampleExpansion(t *testing.T) {
	// Paper Section 4: R = k ◦ (k ◦ w)^{2,4} ◦ w expands to exactly
	// kkwkww ∪ kkwkwkww ∪ kkwkwkwkww.
	n := norm(t, "k/(k/w){2,4}/w", Options{})
	want := []string{
		"k/k/w/k/w/w",
		"k/k/w/k/w/k/w/w",
		"k/k/w/k/w/k/w/k/w/w",
	}
	got := pathStrings(n)
	if len(got) != len(want) {
		t.Fatalf("got %d disjuncts %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("disjunct %d = %q, want %q", i, got[i], want[i])
		}
	}
	if n.HasEpsilon {
		t.Error("unexpected ε disjunct")
	}
}

func TestUnionPullUp(t *testing.T) {
	// a/(b|c)/d must become a/b/d ∪ a/c/d.
	n := norm(t, "a/(b|c)/d", Options{})
	got := pathStrings(n)
	want := []string{"a/b/d", "a/c/d"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestNestedUnions(t *testing.T) {
	n := norm(t, "(a|(b|c))/(d|e)", Options{})
	if len(n.Paths) != 6 {
		t.Errorf("got %d disjuncts %v, want 6", len(n.Paths), pathStrings(n))
	}
}

func TestEpsilonHandling(t *testing.T) {
	n := norm(t, "a?", Options{})
	if !n.HasEpsilon {
		t.Error("a? should have an ε disjunct")
	}
	if len(n.Paths) != 1 || n.Paths[0].String() != "a" {
		t.Errorf("a? paths = %v", pathStrings(n))
	}

	n = norm(t, "()/a/()", Options{})
	if n.HasEpsilon || len(n.Paths) != 1 || n.Paths[0].String() != "a" {
		t.Errorf("ε in concat should vanish: %v (eps=%v)", pathStrings(n), n.HasEpsilon)
	}

	n = norm(t, "()", Options{})
	if !n.HasEpsilon || len(n.Paths) != 0 {
		t.Errorf("() alone: %v (eps=%v)", pathStrings(n), n.HasEpsilon)
	}

	n = norm(t, "a{0,2}", Options{})
	if !n.HasEpsilon {
		t.Error("a{0,2} should include ε")
	}
	got := pathStrings(n)
	if len(got) != 2 || got[0] != "a" || got[1] != "a/a" {
		t.Errorf("a{0,2} = %v", got)
	}
}

func TestDeduplication(t *testing.T) {
	n := norm(t, "a|a|a", Options{})
	if len(n.Paths) != 1 {
		t.Errorf("a|a|a should dedup to one disjunct, got %v", pathStrings(n))
	}
	// (a|b){2} has a/b and b/a distinct but a/a etc. unique.
	n = norm(t, "(a|b){2}", Options{})
	if len(n.Paths) != 4 {
		t.Errorf("(a|b){2} should have 4 disjuncts, got %v", pathStrings(n))
	}
	// Overlapping repetition ranges dedup: a{1,2}|a{2,3}.
	n = norm(t, "a{1,2}|a{2,3}", Options{})
	if len(n.Paths) != 3 {
		t.Errorf("a{1,2}|a{2,3} should have 3 disjuncts, got %v", pathStrings(n))
	}
}

func TestInverseSteps(t *testing.T) {
	n := norm(t, "supervisor/worksFor^-", Options{})
	if len(n.Paths) != 1 {
		t.Fatalf("got %v", pathStrings(n))
	}
	p := n.Paths[0]
	if !p[1].Inverse || p[1].Label != "worksFor" {
		t.Errorf("second step should be worksFor^-: %v", p)
	}
}

func TestPathInverse(t *testing.T) {
	p := Path{
		{Label: "a", Inverse: false},
		{Label: "b", Inverse: true},
		{Label: "c", Inverse: false},
	}
	inv := p.Inverse()
	if inv.String() != "c^-/b/a^-" {
		t.Errorf("Inverse = %q, want c^-/b/a^-", inv.String())
	}
	if !inv.Inverse().Equal(p) {
		t.Errorf("double inverse != original: %v", inv.Inverse())
	}
}

func TestStarBoundLegacyExpansion(t *testing.T) {
	// The legacy mode (ExpandStars) rejects unbounded repetition without
	// a star bound.
	if _, err := Normalize(rpq.MustParse("a*"), Options{ExpandStars: true}); err == nil {
		t.Error("a* with ExpandStars but no StarBound should fail")
	}
	// With bound 3: ε, a, aa, aaa.
	n, err := Normalize(rpq.MustParse("a*"), Options{ExpandStars: true, StarBound: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !n.HasEpsilon || len(n.Paths) != 3 || len(n.Closures) != 0 {
		t.Errorf("a* bound 3: %v (eps=%v)", pathStrings(n), n.HasEpsilon)
	}
	// a+ excludes ε.
	n, err = Normalize(rpq.MustParse("a+"), Options{ExpandStars: true, StarBound: 3})
	if err != nil {
		t.Fatal(err)
	}
	if n.HasEpsilon || len(n.Paths) != 3 {
		t.Errorf("a+ bound 3: %v (eps=%v)", pathStrings(n), n.HasEpsilon)
	}
	// a{2,} with bound smaller than min still produces at least a^min.
	n, err = Normalize(rpq.MustParse("a{2,}"), Options{ExpandStars: true, StarBound: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Paths) != 1 || n.Paths[0].String() != "a/a" {
		t.Errorf("a{2,} bound 1: %v", pathStrings(n))
	}
}

func closureStrings(n Normal) []string {
	out := make([]string, len(n.Closures))
	for i, s := range n.Closures {
		out[i] = s.String()
	}
	return out
}

func TestStarFactoring(t *testing.T) {
	cases := []struct {
		query    string
		closures []string
		paths    []string
		epsilon  bool
	}{
		// A bare star becomes one closure factor; no ε disjunct is
		// needed because a closure's relation contains the identity.
		{"a*", []string{"(a)*"}, nil, false},
		{"(a|b)*", []string{"(a|b)*"}, nil, false},
		{"(a/b)*", []string{"(a/b)*"}, nil, false},
		// R+ = R ∘ R*.
		{"a+", []string{"a/(a)*"}, nil, false},
		{"a{2,}", []string{"a/a/(a)*"}, nil, false},
		// Closures inside compositions keep their flanks.
		{"a/(b|c)*/d", []string{"a/(b|c)*/d"}, nil, false},
		// Multiple stars in one disjunct.
		{"a*/b*", []string{"(a)*/(b)*"}, nil, false},
		// Adjacent identical stars collapse: a*/a* = a*.
		{"a*/a*", []string{"(a)*"}, nil, false},
		// Nested stars flatten: (a*)* = a*, (a|b*)* = (a|b)*.
		{"(a*)*", []string{"(a)*"}, nil, false},
		{"(a|b*)*", []string{"(a|b)*"}, nil, false},
		// (R|ε)* = R*.
		{"(a?)*", []string{"(a)*"}, nil, false},
		// ε-only stars are the identity.
		{"()*", nil, nil, true},
		// Non-flattenable nested stars stay nested.
		{"(a/b*)*", []string{"(a/(b)*)*"}, nil, false},
		// Mixed unions keep plain paths alongside closures.
		{"c|a*", []string{"(a)*"}, []string{"c"}, false},
		// Bounded repetition over closures expands over sequences.
		{"(a*/b){2}", []string{"(a)*/b/(a)*/b"}, nil, false},
	}
	for _, tc := range cases {
		n := norm(t, tc.query, Options{})
		if got := strings.Join(closureStrings(n), ";"); got != strings.Join(tc.closures, ";") {
			t.Errorf("%s closures = %v, want %v", tc.query, closureStrings(n), tc.closures)
		}
		if got := strings.Join(pathStrings(n), ";"); got != strings.Join(tc.paths, ";") {
			t.Errorf("%s paths = %v, want %v", tc.query, pathStrings(n), tc.paths)
		}
		if n.HasEpsilon != tc.epsilon {
			t.Errorf("%s epsilon = %v, want %v", tc.query, n.HasEpsilon, tc.epsilon)
		}
	}
}

func TestStarCanonicalKeys(t *testing.T) {
	equal := [][2]string{
		{"a*", "(a)*"},
		{"a*", "(a*)*"},
		{"a*/a*", "a*"},
		{"(a|b)*", "(b|a)*"},
		{"(a|b*)*", "(a|b)*"},
		{"a+", "a/a*"},
	}
	for _, pair := range equal {
		k0 := norm(t, pair[0], Options{}).CanonicalKey()
		k1 := norm(t, pair[1], Options{}).CanonicalKey()
		if k0 != k1 {
			t.Errorf("CanonicalKey(%q) = %q, CanonicalKey(%q) = %q; want equal",
				pair[0], k0, pair[1], k1)
		}
	}
	distinct := [][2]string{
		{"a*", "b*"},
		{"a*", "a+"},
		{"a*", "a"},
		{"(a/b)*", "(a|b)*"},
	}
	for _, pair := range distinct {
		k0 := norm(t, pair[0], Options{}).CanonicalKey()
		k1 := norm(t, pair[1], Options{}).CanonicalKey()
		if k0 == k1 {
			t.Errorf("CanonicalKey(%q) == CanonicalKey(%q) == %q; want distinct",
				pair[0], pair[1], k0)
		}
	}
	// Star keys are themselves query syntax with the same normal form.
	for _, q := range []string{"a*", "(a|b^-)*", "a/(b|c)*/d", "(a/b*)*", "c|a*"} {
		key := norm(t, q, Options{}).CanonicalKey()
		again := norm(t, key, Options{}).CanonicalKey()
		if key != again {
			t.Errorf("CanonicalKey not a fixed point: %q -> %q -> %q", q, key, again)
		}
	}
}

func TestLimitErrorContext(t *testing.T) {
	_, err := Normalize(rpq.MustParse("x/(a|b){12}"), Options{MaxDisjuncts: 100})
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatalf("want LimitError, got %v", err)
	}
	if le.Option != "MaxDisjuncts" {
		t.Errorf("Option = %q, want MaxDisjuncts", le.Option)
	}
	if le.Frag != "(a|b){12}" {
		t.Errorf("Frag = %q, want the offending repetition", le.Frag)
	}
	if msg := le.Error(); !strings.Contains(msg, "(a|b){12}") || !strings.Contains(msg, "MaxDisjuncts") {
		t.Errorf("error text lacks context: %q", msg)
	}

	_, err = Normalize(rpq.MustParse("a{64}"), Options{MaxPathLength: 10})
	if !errors.As(err, &le) {
		t.Fatalf("want LimitError, got %v", err)
	}
	if le.Option != "MaxPathLength" || le.Frag != "a{64}" {
		t.Errorf("path-length limit context = (%q, %q)", le.Frag, le.Option)
	}
}

// TestExpandStarsTotalSizeBound is the regression test for the legacy
// ExpandStars blowout: a two-label star bounded at 15 expands to 65535
// disjuncts — one under the default MaxDisjuncts — whose summed size is
// ~900k steps, enough that the downstream operator tree used to reach
// gigabytes. The expansion must now fail on the total-size bound, naming
// Options.MaxTotalSteps, well before any such allocation: the limit is
// checked at every accumulation point, so the expansion is abandoned as
// soon as the running total crosses DefaultMaxTotalSteps (a few MB of
// sequences at most).
func TestExpandStarsTotalSizeBound(t *testing.T) {
	_, err := Normalize(rpq.MustParse("(a|b)*"), Options{ExpandStars: true, StarBound: 15})
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatalf("(a|b)* with StarBound 15 must exceed the total-size bound, got %v", err)
	}
	if le.Option != "MaxTotalSteps" {
		t.Errorf("Option = %q, want MaxTotalSteps (the disjunct count alone stays under its limit)", le.Option)
	}
	if le.Limit != DefaultMaxTotalSteps {
		t.Errorf("Limit = %d, want the default %d", le.Limit, DefaultMaxTotalSteps)
	}
	if msg := le.Error(); !strings.Contains(msg, "MaxTotalSteps") {
		t.Errorf("error text does not name the size option: %q", msg)
	}

	// Raising the bound admits the same expansion (sanity: the new limit
	// is the only thing rejecting it).
	if _, err := Normalize(rpq.MustParse("(a|b)*"), Options{ExpandStars: true, StarBound: 15, MaxTotalSteps: 1 << 21}); err != nil {
		t.Errorf("raised MaxTotalSteps still rejects: %v", err)
	}
	// Moderate expansions stay admitted under the default.
	if _, err := Normalize(rpq.MustParse("(a|b)*"), Options{ExpandStars: true, StarBound: 8}); err != nil {
		t.Errorf("moderate star expansion rejected: %v", err)
	}
}

func TestEpsilonOnlyRepeat(t *testing.T) {
	n := norm(t, "(){5,9}", Options{})
	if !n.HasEpsilon || len(n.Paths) != 0 {
		t.Errorf("ε{5,9}: %v (eps=%v)", pathStrings(n), n.HasEpsilon)
	}
	// ε* with a huge bound must terminate fast via the fixed-point break.
	n2, err := Normalize(rpq.MustParse("()*"), Options{StarBound: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	if !n2.HasEpsilon || len(n2.Paths) != 0 {
		t.Errorf("ε*: %v", pathStrings(n2))
	}
}

func TestDisjunctLimit(t *testing.T) {
	_, err := Normalize(rpq.MustParse("(a|b){12}"), Options{MaxDisjuncts: 100})
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatalf("want LimitError, got %v", err)
	}
	if le.What != "disjunct" {
		t.Errorf("limit kind = %q", le.What)
	}
}

func TestPathLengthLimit(t *testing.T) {
	_, err := Normalize(rpq.MustParse("a{64}"), Options{MaxPathLength: 10})
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatalf("want LimitError, got %v", err)
	}
	if le.What != "path length" {
		t.Errorf("limit kind = %q", le.What)
	}
}

func TestDeterministicOrder(t *testing.T) {
	a := norm(t, "(b|a)/(d|c)", Options{})
	b := norm(t, "(a|b)/(c|d)", Options{})
	sa, sb := strings.Join(pathStrings(a), ";"), strings.Join(pathStrings(b), ";")
	if sa != sb {
		t.Errorf("order not canonical: %q vs %q", sa, sb)
	}
	// Shorter paths come first.
	n := norm(t, "a/a/a|b", Options{})
	if len(n.Paths[0]) != 1 {
		t.Errorf("paths not sorted by length: %v", pathStrings(n))
	}
}

func TestMatcherBasics(t *testing.T) {
	e := rpq.MustParse("a/(b|c)*/d")
	steps := func(s ...string) []rpq.Step {
		out := make([]rpq.Step, len(s))
		for i, l := range s {
			out[i] = rpq.Step{Label: l}
		}
		return out
	}
	if !Matches(e, steps("a", "d")) {
		t.Error("a,d should match")
	}
	if !Matches(e, steps("a", "b", "c", "b", "d")) {
		t.Error("a,b,c,b,d should match")
	}
	if Matches(e, steps("a")) {
		t.Error("a alone should not match")
	}
	if Matches(e, steps("a", "b")) {
		t.Error("a,b should not match")
	}
	inv := rpq.MustParse("a^-/a")
	if !Matches(inv, []rpq.Step{{Label: "a", Inverse: true}, {Label: "a"}}) {
		t.Error("inverse word should match")
	}
	if Matches(inv, steps("a", "a")) {
		t.Error("forward word should not match inverse query")
	}
}

// TestQuickNormalizeAgreesWithMatcher: the disjunct set of a random
// expression is exactly the set of short words accepted by the reference
// matcher.
func TestQuickNormalizeAgreesWithMatcher(t *testing.T) {
	labels := []string{"x", "y"}
	opts := rpq.GenOptions{
		Labels:         labels,
		MaxDepth:       3,
		MaxFanout:      2,
		MaxRepeatBound: 2,
		AllowEpsilon:   true,
		AllowInverse:   true,
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := rpq.Generate(r, opts)
		n, err := Normalize(e, Options{})
		if err != nil {
			var le *LimitError
			return errors.As(err, &le) // limits are the only allowed failure
		}
		// Every disjunct must be accepted by the matcher.
		for _, p := range n.Paths {
			if !Matches(e, p) {
				t.Logf("expr %s: disjunct %s not in language", e, p)
				return false
			}
		}
		if n.HasEpsilon != Matches(e, nil) {
			t.Logf("expr %s: ε mismatch", e)
			return false
		}
		// Every word of length ≤ 3 accepted by the matcher must be a
		// disjunct.
		inSet := map[string]bool{}
		for _, p := range n.Paths {
			inSet[p.Key()] = true
		}
		alphabet := []rpq.Step{
			{Label: "x"}, {Label: "x", Inverse: true},
			{Label: "y"}, {Label: "y", Inverse: true},
		}
		var words func(prefix Path, depth int) bool
		words = func(prefix Path, depth int) bool {
			if len(prefix) > 0 && Matches(e, prefix) != inSet[prefix.Key()] {
				t.Logf("expr %s: word %s mismatch (match=%v)", e, prefix, Matches(e, prefix))
				return false
			}
			if depth == 0 {
				return true
			}
			for _, s := range alphabet {
				if !words(append(append(Path{}, prefix...), s), depth-1) {
					return false
				}
			}
			return true
		}
		return words(Path{}, 3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestTotalSteps(t *testing.T) {
	n := norm(t, "a/b|c", Options{})
	if got := n.TotalSteps(); got != 3 {
		t.Errorf("TotalSteps = %d, want 3", got)
	}
}

func TestNormalString(t *testing.T) {
	n := norm(t, "a?|b/c", Options{})
	s := n.String()
	if !strings.Contains(s, "()") || !strings.Contains(s, "b/c") {
		t.Errorf("Normal.String() = %q", s)
	}
}

func TestCanonicalKey(t *testing.T) {
	equal := [][2]string{
		{"a/b|c", "c|a/b"},
		{"a|b|a", "b|a"},
		{"(a|b)/c", "a/c|b/c"},
		{"a{0,2}", "()|a|a/a"},
		{"a/b | c", "c|a/b"}, // whitespace is insignificant
	}
	for _, pair := range equal {
		k0 := norm(t, pair[0], Options{}).CanonicalKey()
		k1 := norm(t, pair[1], Options{}).CanonicalKey()
		if k0 != k1 {
			t.Errorf("CanonicalKey(%q) = %q, CanonicalKey(%q) = %q; want equal",
				pair[0], k0, pair[1], k1)
		}
	}
	distinct := [][2]string{
		{"a/b", "b/a"},
		{"a|b", "a"},
		{"a?", "a"},
		{"a^-", "a"},
	}
	for _, pair := range distinct {
		k0 := norm(t, pair[0], Options{}).CanonicalKey()
		k1 := norm(t, pair[1], Options{}).CanonicalKey()
		if k0 == k1 {
			t.Errorf("CanonicalKey(%q) == CanonicalKey(%q) == %q; want distinct",
				pair[0], pair[1], k0)
		}
	}
}

func TestCanonicalKeyReparses(t *testing.T) {
	// The key is itself query syntax and is a fixed point: normalizing
	// the key yields the key again.
	for _, q := range []string{"a/b|c", "a{0,2}/b", "(a|b^-)/c?", "a?"} {
		key := norm(t, q, Options{}).CanonicalKey()
		again := norm(t, key, Options{}).CanonicalKey()
		if key != again {
			t.Errorf("CanonicalKey not a fixed point: %q -> %q -> %q", q, key, again)
		}
	}
}
