// Package rpq defines the regular path query language of Fletcher, Peters
// & Poulovassilis (EDBT 2016), Section 2.2: regular expressions over edge
// labels and their inverses with identity (ε), composition, disjunction,
// and bounded recursion R^{i,j}, plus the conventional Kleene operators
// (*, +, ?) which the rewriter bounds by the graph-dependent constant n(G).
//
// The package provides the abstract syntax tree, a parser for a textual
// syntax, a printer producing parseable output, and a seeded random query
// generator used by property-based tests.
package rpq

import (
	"fmt"
	"strings"
)

// Unbounded marks a repetition with no upper bound, as in R{2,} or R*.
const Unbounded = -1

// Expr is a regular path query expression.
type Expr interface {
	fmt.Stringer
	isExpr()
	// precedence returns the binding strength used by String to insert
	// minimal parentheses: union < concat < repeat/atom.
	precedence() int
}

// Epsilon is the identity transition ε: it relates every node to itself.
type Epsilon struct{}

// Step is a single navigation along an edge label, forward (knows) or
// backward (knows^-).
type Step struct {
	Label   string
	Inverse bool
}

// Concat is the path composition R1 ∘ R2 ∘ … ∘ Rn, n ≥ 2.
type Concat struct {
	Parts []Expr
}

// Union is the path disjunction R1 ∪ R2 ∪ … ∪ Rn, n ≥ 2.
type Union struct {
	Alts []Expr
}

// Repeat is the bounded recursion R^{Min,Max}: between Min and Max
// consecutive compositions of R. Max == Unbounded denotes no upper limit
// (Kleene closure shapes); the rewriter replaces Unbounded by n(G) before
// index-based evaluation.
type Repeat struct {
	Sub Expr
	Min int
	Max int
}

func (Epsilon) isExpr() {}
func (Step) isExpr()    {}
func (Concat) isExpr()  {}
func (Union) isExpr()   {}
func (Repeat) isExpr()  {}

func (Epsilon) precedence() int { return 3 }
func (Step) precedence() int    { return 3 }
func (Concat) precedence() int  { return 1 }
func (Union) precedence() int   { return 0 }
func (Repeat) precedence() int  { return 2 }

// String renders ε as "()".
func (Epsilon) String() string { return "()" }

func (s Step) String() string {
	if s.Inverse {
		return s.Label + "^-"
	}
	return s.Label
}

func (c Concat) String() string {
	var b strings.Builder
	for i, p := range c.Parts {
		if i > 0 {
			b.WriteByte('/')
		}
		// A concat directly inside a concat must keep its own parentheses
		// or the reparse would flatten it into the parent.
		if _, nested := p.(Concat); nested {
			b.WriteByte('(')
			b.WriteString(p.String())
			b.WriteByte(')')
			continue
		}
		writeChild(&b, p, c.precedence())
	}
	return b.String()
}

func (u Union) String() string {
	var b strings.Builder
	for i, a := range u.Alts {
		if i > 0 {
			b.WriteByte('|')
		}
		// Parenthesize a directly nested union for the same reason as in
		// Concat.String.
		if _, nested := a.(Union); nested {
			b.WriteByte('(')
			b.WriteString(a.String())
			b.WriteByte(')')
			continue
		}
		writeChild(&b, a, u.precedence())
	}
	return b.String()
}

func (r Repeat) String() string {
	var b strings.Builder
	writeChild(&b, r.Sub, r.precedence())
	switch {
	case r.Min == 0 && r.Max == Unbounded:
		b.WriteByte('*')
	case r.Min == 1 && r.Max == Unbounded:
		b.WriteByte('+')
	case r.Min == 0 && r.Max == 1:
		b.WriteByte('?')
	case r.Max == Unbounded:
		fmt.Fprintf(&b, "{%d,}", r.Min)
	case r.Min == r.Max:
		fmt.Fprintf(&b, "{%d}", r.Min)
	default:
		fmt.Fprintf(&b, "{%d,%d}", r.Min, r.Max)
	}
	return b.String()
}

// writeChild renders e, parenthesizing when its precedence is weaker than
// the parent's.
func writeChild(b *strings.Builder, e Expr, parentPrec int) {
	if e.precedence() < parentPrec {
		b.WriteByte('(')
		b.WriteString(e.String())
		b.WriteByte(')')
		return
	}
	b.WriteString(e.String())
}

// Validate checks structural well-formedness: repetition bounds satisfy
// 0 ≤ Min ≤ Max (unless Max is Unbounded), and n-ary nodes have at least
// two children.
func Validate(e Expr) error {
	switch v := e.(type) {
	case Epsilon:
		return nil
	case Step:
		if v.Label == "" {
			return fmt.Errorf("rpq: empty label in step")
		}
		return nil
	case Concat:
		if len(v.Parts) < 2 {
			return fmt.Errorf("rpq: concat with %d parts", len(v.Parts))
		}
		for _, p := range v.Parts {
			if err := Validate(p); err != nil {
				return err
			}
		}
		return nil
	case Union:
		if len(v.Alts) < 2 {
			return fmt.Errorf("rpq: union with %d alternatives", len(v.Alts))
		}
		for _, a := range v.Alts {
			if err := Validate(a); err != nil {
				return err
			}
		}
		return nil
	case Repeat:
		if v.Min < 0 {
			return fmt.Errorf("rpq: repetition with negative lower bound %d", v.Min)
		}
		if v.Max != Unbounded && v.Max < v.Min {
			return fmt.Errorf("rpq: repetition bounds {%d,%d} inverted", v.Min, v.Max)
		}
		return Validate(v.Sub)
	case nil:
		return fmt.Errorf("rpq: nil expression")
	default:
		return fmt.Errorf("rpq: unknown expression type %T", e)
	}
}

// Labels returns the distinct label names mentioned in e, in first-seen
// order.
func Labels(e Expr) []string {
	var out []string
	seen := map[string]bool{}
	var walk func(Expr)
	walk = func(e Expr) {
		switch v := e.(type) {
		case Step:
			if !seen[v.Label] {
				seen[v.Label] = true
				out = append(out, v.Label)
			}
		case Concat:
			for _, p := range v.Parts {
				walk(p)
			}
		case Union:
			for _, a := range v.Alts {
				walk(a)
			}
		case Repeat:
			walk(v.Sub)
		}
	}
	walk(e)
	return out
}

// HasUnbounded reports whether e contains a repetition without an upper
// bound (*, +, or {i,}).
func HasUnbounded(e Expr) bool {
	switch v := e.(type) {
	case Concat:
		for _, p := range v.Parts {
			if HasUnbounded(p) {
				return true
			}
		}
	case Union:
		for _, a := range v.Alts {
			if HasUnbounded(a) {
				return true
			}
		}
	case Repeat:
		return v.Max == Unbounded || HasUnbounded(v.Sub)
	}
	return false
}
