package rpq

import (
	"reflect"
	"testing"
)

// FuzzParse checks the parser against the printer: any input that parses
// must print (String) to syntax that reparses to the identical AST, and
// the printed form must be a fixed point of the round trip. Inputs that
// fail to parse must do so with an error, never a panic.
func FuzzParse(f *testing.F) {
	// Seed corpus: the Advogato workload texts (Q1–Q8), the paper's
	// worked-example shape, every operator and token form, and inputs
	// that probe parser edges (errors, whitespace, unicode, nesting).
	seeds := []string{
		// Workload queries.
		"master/journeyer",
		"master/master/journeyer",
		"journeyer/master/journeyer/apprentice/master/journeyer",
		"master/journeyer|journeyer/apprentice/master",
		"master/journeyer^-/apprentice/master^-",
		"(master|journeyer){1,3}",
		"master/(apprentice/master){2,3}/journeyer",
		"(master|journeyer^-)/apprentice{1,2}/(master/journeyer|apprentice)",
		// Operator and token forms.
		"knows/worksFor^-",
		"(knows/worksFor){2,4}",
		"knows|worksFor-",
		"a*", "a+", "a?", "a{3}", "a{2,}", "a{0,0}",
		"()", "()|a", "a/()/b",
		"a.b.c",
		"_x1/y_2",
		"((a))",
		"(a|b)/(c|d)",
		"a^-^-",
		// Near-miss and error shapes.
		"a{", "a{1", "a{1,", "a{2,1}", "a||b", "a/", "|a", "^", "^-",
		"(", ")", "(()", "a b", "a\tb", " a ", "9", "a{999999999}",
		"é/ü", "λ*",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		e, err := Parse(input)
		if err != nil {
			return // rejected inputs just must not panic
		}
		printed := e.String()
		e2, err := Parse(printed)
		if err != nil {
			t.Fatalf("Parse(%q) succeeded but its printed form %q does not reparse: %v", input, printed, err)
		}
		if !reflect.DeepEqual(e, e2) {
			t.Fatalf("round trip changed the AST: %q -> %#v, printed %q -> %#v", input, e, printed, e2)
		}
		if again := e2.String(); again != printed {
			t.Fatalf("printing is not a fixed point: %q -> %q -> %q", input, printed, again)
		}
	})
}
