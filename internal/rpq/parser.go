package rpq

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"
)

// Parse parses the textual RPQ syntax:
//
//	expr   := term ('|' term)*                 union
//	term   := factor (('/' | '.') factor)*     composition
//	factor := atom ('*' | '+' | '?' | '{' n (',' n?)? '}')*
//	atom   := IDENT ['^-' | '-']               label, optionally inverted
//	        | '(' expr ')'                     grouping
//	        | '(' ')'                          epsilon
//
// Identifiers are letters, digits, and underscores, starting with a letter
// or underscore. Whitespace is insignificant. Examples:
//
//	knows/worksFor^-           supervisor ∘ worksFor⁻ in paper notation
//	(knows/worksFor){2,4}      bounded recursion
//	knows|worksFor-            union with an inverse step (suffix '-')
func Parse(input string) (Expr, error) {
	p := &parser{input: input}
	p.next()
	e, err := p.parseUnion()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.errorf("unexpected %s after complete query", p.tok)
	}
	if err := Validate(e); err != nil {
		return nil, err
	}
	return e, nil
}

// MustParse is Parse that panics on error; intended for tests and fixed
// workload definitions.
func MustParse(input string) Expr {
	e, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return e
}

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokPipe   // |
	tokSlash  // / or .
	tokStar   // *
	tokPlus   // +
	tokOpt    // ?
	tokLParen // (
	tokRParen // )
	tokLBrace // {
	tokRBrace // }
	tokComma  // ,
	tokNumber
	tokInvert // ^- or suffix -
	tokError  // lexical error; never matches any grammar production
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

type parser struct {
	input string
	pos   int
	tok   token
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("rpq: parse error at offset %d: %s", p.tok.pos, fmt.Sprintf(format, args...))
}

func (p *parser) next() {
	for p.pos < len(p.input) && (p.input[p.pos] == ' ' || p.input[p.pos] == '\t' || p.input[p.pos] == '\n' || p.input[p.pos] == '\r') {
		p.pos++
	}
	start := p.pos
	if p.pos >= len(p.input) {
		p.tok = token{kind: tokEOF, pos: start}
		return
	}
	c, _ := utf8.DecodeRuneInString(p.input[p.pos:])
	switch {
	case c == '|':
		p.pos++
		p.tok = token{tokPipe, "|", start}
	case c == '/' || c == '.':
		p.pos++
		p.tok = token{tokSlash, string(c), start}
	case c == '*':
		p.pos++
		p.tok = token{tokStar, "*", start}
	case c == '+':
		p.pos++
		p.tok = token{tokPlus, "+", start}
	case c == '?':
		p.pos++
		p.tok = token{tokOpt, "?", start}
	case c == '(':
		p.pos++
		p.tok = token{tokLParen, "(", start}
	case c == ')':
		p.pos++
		p.tok = token{tokRParen, ")", start}
	case c == '{':
		p.pos++
		p.tok = token{tokLBrace, "{", start}
	case c == '}':
		p.pos++
		p.tok = token{tokRBrace, "}", start}
	case c == ',':
		p.pos++
		p.tok = token{tokComma, ",", start}
	case c == '^':
		if strings.HasPrefix(p.input[p.pos:], "^-") {
			p.pos += 2
			p.tok = token{tokInvert, "^-", start}
			return
		}
		p.failLex(start, "'^' must be followed by '-'")
	case c == '-':
		p.pos++
		p.tok = token{tokInvert, "-", start}
	case unicode.IsDigit(c):
		end := p.pos
		for end < len(p.input) && unicode.IsDigit(rune(p.input[end])) {
			end++
		}
		p.tok = token{tokNumber, p.input[p.pos:end], start}
		p.pos = end
	case unicode.IsLetter(c) || c == '_':
		end := p.pos
		for end < len(p.input) {
			r, size := utf8.DecodeRuneInString(p.input[end:])
			if !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '_' {
				break
			}
			end += size
		}
		p.tok = token{tokIdent, p.input[p.pos:end], start}
		p.pos = end
	default:
		p.failLex(start, fmt.Sprintf("unexpected character %q", c))
	}
}

// failLex records a lexical error by injecting a sentinel token; the
// parser surfaces it at the next grammar check. Simpler than threading an
// error through next().
func (p *parser) failLex(pos int, msg string) {
	p.tok = token{kind: tokError, text: "<" + msg + ">", pos: pos}
	p.pos = len(p.input)
}

func (p *parser) parseUnion() (Expr, error) {
	first, err := p.parseConcat()
	if err != nil {
		return nil, err
	}
	alts := []Expr{first}
	for p.tok.kind == tokPipe {
		p.next()
		e, err := p.parseConcat()
		if err != nil {
			return nil, err
		}
		alts = append(alts, e)
	}
	if len(alts) == 1 {
		return alts[0], nil
	}
	return Union{Alts: alts}, nil
}

func (p *parser) parseConcat() (Expr, error) {
	first, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	parts := []Expr{first}
	for p.tok.kind == tokSlash {
		p.next()
		e, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		parts = append(parts, e)
	}
	if len(parts) == 1 {
		return parts[0], nil
	}
	return Concat{Parts: parts}, nil
}

func (p *parser) parseFactor() (Expr, error) {
	e, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for {
		switch p.tok.kind {
		case tokStar:
			e = Repeat{Sub: e, Min: 0, Max: Unbounded}
			p.next()
		case tokPlus:
			e = Repeat{Sub: e, Min: 1, Max: Unbounded}
			p.next()
		case tokOpt:
			e = Repeat{Sub: e, Min: 0, Max: 1}
			p.next()
		case tokLBrace:
			rep, err := p.parseBounds(e)
			if err != nil {
				return nil, err
			}
			e = rep
		default:
			return e, nil
		}
	}
}

func (p *parser) parseBounds(sub Expr) (Expr, error) {
	p.next() // consume '{'
	if p.tok.kind != tokNumber {
		return nil, p.errorf("expected repetition lower bound, got %s", p.tok)
	}
	min, err := strconv.Atoi(p.tok.text)
	if err != nil {
		return nil, p.errorf("bad number %q", p.tok.text)
	}
	p.next()
	max := min
	if p.tok.kind == tokComma {
		p.next()
		switch p.tok.kind {
		case tokNumber:
			max, err = strconv.Atoi(p.tok.text)
			if err != nil {
				return nil, p.errorf("bad number %q", p.tok.text)
			}
			p.next()
		case tokRBrace:
			max = Unbounded
		default:
			return nil, p.errorf("expected upper bound or '}', got %s", p.tok)
		}
	}
	if p.tok.kind != tokRBrace {
		return nil, p.errorf("expected '}', got %s", p.tok)
	}
	p.next()
	if max != Unbounded && max < min {
		return nil, p.errorf("repetition bounds {%d,%d} inverted", min, max)
	}
	return Repeat{Sub: sub, Min: min, Max: max}, nil
}

func (p *parser) parseAtom() (Expr, error) {
	switch p.tok.kind {
	case tokIdent:
		label := p.tok.text
		p.next()
		if p.tok.kind == tokInvert {
			p.next()
			return Step{Label: label, Inverse: true}, nil
		}
		return Step{Label: label}, nil
	case tokLParen:
		p.next()
		if p.tok.kind == tokRParen {
			p.next()
			return Epsilon{}, nil
		}
		e, err := p.parseUnion()
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tokRParen {
			return nil, p.errorf("expected ')', got %s", p.tok)
		}
		p.next()
		return e, nil
	default:
		return nil, p.errorf("expected label or '(', got %s", p.tok)
	}
}
