package rpq

import (
	"strings"
	"testing"
)

func TestParseHugeRepeatBound(t *testing.T) {
	// Bounds beyond int range must error, not wrap.
	if _, err := Parse("a{99999999999999999999}"); err == nil {
		t.Error("overflowing bound should fail to parse")
	}
	// Large but representable bounds parse (expansion limits are the
	// rewriter's job, not the parser's).
	e, err := Parse("a{1000000}")
	if err != nil {
		t.Fatalf("large bound: %v", err)
	}
	if rep, ok := e.(Repeat); !ok || rep.Min != 1000000 {
		t.Errorf("got %#v", e)
	}
}

func TestParseErrorOffsets(t *testing.T) {
	_, err := Parse("abc/(def|")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "offset") {
		t.Errorf("error lacks offset: %v", err)
	}
}

func TestParseUnderscoreAndDigitsInIdent(t *testing.T) {
	e, err := Parse("_label_2/other3")
	if err != nil {
		t.Fatal(err)
	}
	c, ok := e.(Concat)
	if !ok || c.Parts[0].(Step).Label != "_label_2" || c.Parts[1].(Step).Label != "other3" {
		t.Errorf("got %#v", e)
	}
}

func TestParseUnicodeLetters(t *testing.T) {
	e, err := Parse("знает/работаетНа^-")
	if err != nil {
		t.Fatal(err)
	}
	c, ok := e.(Concat)
	if !ok || c.Parts[0].(Step).Label != "знает" {
		t.Errorf("got %#v", e)
	}
	if !c.Parts[1].(Step).Inverse {
		t.Error("inverse lost")
	}
}

func TestPostfixStacking(t *testing.T) {
	// a{2}* parses as (a{2})* — postfixes apply left to right.
	e, err := Parse("a{2}*")
	if err != nil {
		t.Fatal(err)
	}
	outer, ok := e.(Repeat)
	if !ok || outer.Max != Unbounded {
		t.Fatalf("outer: %#v", e)
	}
	inner, ok := outer.Sub.(Repeat)
	if !ok || inner.Min != 2 || inner.Max != 2 {
		t.Fatalf("inner: %#v", outer.Sub)
	}
}

func TestEpsilonPostfix(t *testing.T) {
	e, err := Parse("(){3,7}")
	if err != nil {
		t.Fatal(err)
	}
	rep, ok := e.(Repeat)
	if !ok {
		t.Fatalf("got %#v", e)
	}
	if _, ok := rep.Sub.(Epsilon); !ok {
		t.Errorf("sub = %#v", rep.Sub)
	}
}
