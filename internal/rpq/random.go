package rpq

import "math/rand"

// GenOptions controls random expression generation.
type GenOptions struct {
	// Labels to draw steps from. Must be non-empty.
	Labels []string
	// MaxDepth bounds operator nesting. At depth 0 only steps and ε are
	// generated.
	MaxDepth int
	// MaxFanout bounds the arity of concat/union nodes (minimum 2).
	MaxFanout int
	// MaxRepeatBound bounds repetition upper limits; repetitions are
	// bounded by default so every generated query is evaluable by all
	// engines.
	MaxRepeatBound int
	// AllowUnbounded permits unbounded repetitions (Max = Unbounded,
	// i.e. Kleene shapes R*, R+, R{i,}) with probability 1/3 per
	// repetition node. Used by the closure differential tests.
	AllowUnbounded bool
	// AllowEpsilon permits ε atoms.
	AllowEpsilon bool
	// AllowInverse permits inverted steps.
	AllowInverse bool
}

// DefaultGenOptions returns generation options suitable for property
// tests over a graph with the given labels.
func DefaultGenOptions(labels []string) GenOptions {
	return GenOptions{
		Labels:         labels,
		MaxDepth:       3,
		MaxFanout:      3,
		MaxRepeatBound: 3,
		AllowEpsilon:   true,
		AllowInverse:   true,
	}
}

// Generate returns a random well-formed expression drawn from opts using
// r. The distribution favors small expressions; repetition bounds are kept
// tight so expanded query sizes stay manageable.
func Generate(r *rand.Rand, opts GenOptions) Expr {
	if len(opts.Labels) == 0 {
		panic("rpq: Generate requires at least one label")
	}
	if opts.MaxFanout < 2 {
		opts.MaxFanout = 2
	}
	if opts.MaxRepeatBound < 1 {
		opts.MaxRepeatBound = 1
	}
	return gen(r, opts, opts.MaxDepth)
}

func gen(r *rand.Rand, opts GenOptions, depth int) Expr {
	if depth <= 0 {
		return genAtom(r, opts)
	}
	switch r.Intn(6) {
	case 0, 1: // step-heavy: half the mass at atoms keeps sizes small
		return genAtom(r, opts)
	case 2, 3:
		n := 2 + r.Intn(opts.MaxFanout-1)
		parts := make([]Expr, n)
		for i := range parts {
			parts[i] = gen(r, opts, depth-1)
		}
		return Concat{Parts: parts}
	case 4:
		n := 2 + r.Intn(opts.MaxFanout-1)
		alts := make([]Expr, n)
		for i := range alts {
			alts[i] = gen(r, opts, depth-1)
		}
		return Union{Alts: alts}
	default:
		min := r.Intn(opts.MaxRepeatBound + 1)
		if opts.AllowUnbounded && r.Intn(3) == 0 {
			return Repeat{Sub: gen(r, opts, depth-1), Min: min, Max: Unbounded}
		}
		max := min + r.Intn(opts.MaxRepeatBound-min+1)
		if max == 0 {
			max = 1 // avoid the degenerate R{0,0}
		}
		return Repeat{Sub: gen(r, opts, depth-1), Min: min, Max: max}
	}
}

func genAtom(r *rand.Rand, opts GenOptions) Expr {
	if opts.AllowEpsilon && r.Intn(10) == 0 {
		return Epsilon{}
	}
	s := Step{Label: opts.Labels[r.Intn(len(opts.Labels))]}
	if opts.AllowInverse && r.Intn(2) == 0 {
		s.Inverse = true
	}
	return s
}
