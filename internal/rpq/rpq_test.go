package rpq

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseBasics(t *testing.T) {
	cases := []struct {
		in   string
		want Expr
	}{
		{"knows", Step{Label: "knows"}},
		{"knows^-", Step{Label: "knows", Inverse: true}},
		{"knows-", Step{Label: "knows", Inverse: true}},
		{"()", Epsilon{}},
		{"a/b", Concat{Parts: []Expr{Step{Label: "a"}, Step{Label: "b"}}}},
		{"a.b", Concat{Parts: []Expr{Step{Label: "a"}, Step{Label: "b"}}}},
		{"a|b", Union{Alts: []Expr{Step{Label: "a"}, Step{Label: "b"}}}},
		{"a{2,4}", Repeat{Sub: Step{Label: "a"}, Min: 2, Max: 4}},
		{"a{3}", Repeat{Sub: Step{Label: "a"}, Min: 3, Max: 3}},
		{"a{2,}", Repeat{Sub: Step{Label: "a"}, Min: 2, Max: Unbounded}},
		{"a*", Repeat{Sub: Step{Label: "a"}, Min: 0, Max: Unbounded}},
		{"a+", Repeat{Sub: Step{Label: "a"}, Min: 1, Max: Unbounded}},
		{"a?", Repeat{Sub: Step{Label: "a"}, Min: 0, Max: 1}},
		{"(a)", Step{Label: "a"}},
		{" a / b ", Concat{Parts: []Expr{Step{Label: "a"}, Step{Label: "b"}}}},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Parse(%q) = %#v, want %#v", c.in, got, c.want)
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	// Union binds weakest, then concat, then postfix.
	e := MustParse("a/b|c/d{2}")
	u, ok := e.(Union)
	if !ok || len(u.Alts) != 2 {
		t.Fatalf("top level should be a 2-way union, got %#v", e)
	}
	if _, ok := u.Alts[0].(Concat); !ok {
		t.Errorf("first alternative should be concat, got %#v", u.Alts[0])
	}
	c, ok := u.Alts[1].(Concat)
	if !ok {
		t.Fatalf("second alternative should be concat, got %#v", u.Alts[1])
	}
	if _, ok := c.Parts[1].(Repeat); !ok {
		t.Errorf("d{2} should bind tighter than '/', got %#v", c.Parts[1])
	}
}

func TestParseWorkedExample(t *testing.T) {
	// The paper's Section 4 example: k ◦ (k ◦ w)^{2,4} ◦ w.
	e := MustParse("knows/(knows/worksFor){2,4}/worksFor")
	c, ok := e.(Concat)
	if !ok || len(c.Parts) != 3 {
		t.Fatalf("want 3-part concat, got %#v", e)
	}
	rep, ok := c.Parts[1].(Repeat)
	if !ok || rep.Min != 2 || rep.Max != 4 {
		t.Fatalf("middle part should be {2,4} repeat, got %#v", c.Parts[1])
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{
		"", "|a", "a|", "a/", "/a", "a{", "a{2", "a{2,", "a{,2}", "a{4,2}",
		"(a", "a)", "a^", "a^+", "a b", "a{x}", "9", "{2}", "a**b(", "a$",
	} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q): expected error, got none", in)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	for _, in := range []string{
		"knows",
		"knows^-",
		"a/b/c",
		"a|b|c",
		"(a|b)/c",
		"a/(b|c)",
		"(a/b){2,4}",
		"(a|b)*",
		"a{2,}",
		"a?",
		"()",
		"(()|a)/b",
		"knows/(knows/worksFor){2,4}/worksFor",
	} {
		e := MustParse(in)
		out := e.String()
		e2, err := Parse(out)
		if err != nil {
			t.Errorf("reparse of String(%q) = %q failed: %v", in, out, err)
			continue
		}
		if !reflect.DeepEqual(e, e2) {
			t.Errorf("round trip %q -> %q changed AST:\n%#v\n%#v", in, out, e, e2)
		}
	}
}

func TestValidate(t *testing.T) {
	bad := []Expr{
		Step{},
		Concat{Parts: []Expr{Step{Label: "a"}}},
		Union{Alts: []Expr{Step{Label: "a"}}},
		Repeat{Sub: Step{Label: "a"}, Min: -1, Max: 2},
		Repeat{Sub: Step{Label: "a"}, Min: 3, Max: 2},
		Concat{Parts: []Expr{Step{Label: "a"}, nil}},
	}
	for _, e := range bad {
		if err := Validate(e); err == nil {
			t.Errorf("Validate(%#v): expected error", e)
		}
	}
	good := []Expr{
		Epsilon{},
		Step{Label: "a"},
		Repeat{Sub: Step{Label: "a"}, Min: 0, Max: Unbounded},
	}
	for _, e := range good {
		if err := Validate(e); err != nil {
			t.Errorf("Validate(%#v): %v", e, err)
		}
	}
}

func TestLabels(t *testing.T) {
	e := MustParse("a/(b|a^-)/c{2,3}")
	got := Labels(e)
	want := []string{"a", "b", "c"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Labels = %v, want %v", got, want)
	}
}

func TestHasUnbounded(t *testing.T) {
	for in, want := range map[string]bool{
		"a":         false,
		"a{2,4}":    false,
		"a*":        true,
		"a+":        true,
		"a{2,}":     true,
		"(a*|b)/c":  true,
		"(a|b)/c?":  false,
		"(a{0,3})*": true,
	} {
		if got := HasUnbounded(MustParse(in)); got != want {
			t.Errorf("HasUnbounded(%q) = %v, want %v", in, got, want)
		}
	}
}

// TestQuickGenerateRoundTrip: every generated expression validates,
// prints, and reparses to an identical AST.
func TestQuickGenerateRoundTrip(t *testing.T) {
	labels := []string{"knows", "worksFor", "supervisor"}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := Generate(r, DefaultGenOptions(labels))
		if Validate(e) != nil {
			return false
		}
		out := e.String()
		e2, err := Parse(out)
		if err != nil {
			t.Logf("generated %q failed to reparse: %v", out, err)
			return false
		}
		return reflect.DeepEqual(e, e2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGenerateRespectsOptions(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	opts := GenOptions{
		Labels:         []string{"only"},
		MaxDepth:       4,
		MaxFanout:      3,
		MaxRepeatBound: 2,
		AllowEpsilon:   false,
		AllowInverse:   false,
	}
	for i := 0; i < 200; i++ {
		e := Generate(r, opts)
		var walk func(Expr) bool
		walk = func(e Expr) bool {
			switch v := e.(type) {
			case Epsilon:
				return false
			case Step:
				return v.Label == "only" && !v.Inverse
			case Concat:
				for _, p := range v.Parts {
					if !walk(p) {
						return false
					}
				}
			case Union:
				for _, a := range v.Alts {
					if !walk(a) {
						return false
					}
				}
			case Repeat:
				if v.Max == Unbounded || v.Max > opts.MaxRepeatBound {
					return false
				}
				return walk(v.Sub)
			}
			return true
		}
		if !walk(e) {
			t.Fatalf("generated expression violates options: %s", e)
		}
	}
}

func TestParseDeepNesting(t *testing.T) {
	in := strings.Repeat("(", 50) + "a" + strings.Repeat(")", 50)
	if _, err := Parse(in); err != nil {
		t.Errorf("deeply nested parens: %v", err)
	}
}
