package wal

import (
	"encoding/binary"
	"fmt"

	"repro/internal/graph"
)

// BatchRecord is the decoded payload of a TypeBatch record: the edges
// of one ApplyBatch call and the engine epoch the batch produced.
// Edges are stored by name, not ID — node and label IDs are assigned
// deterministically in first-appearance order by graph.ExtendFrozen, so
// replaying the batches in sequence reproduces the exact ID space the
// original process had, which is what makes spilled run files (whose
// entries are packed IDs) valid across a restart.
type BatchRecord struct {
	Epoch uint64
	Edges []graph.LabeledEdge
}

// SpillRecord is the decoded payload of a TypeSpill record: tier spill
// metadata. File is the v3 run file's name relative to the durability
// directory; FromSeq..ToSeq is the inclusive range of batch sequence
// numbers the tier covers. A spill is an optimization, not a source of
// truth — if the file is missing or corrupt, recovery falls back to
// replaying the covered batch records.
type SpillRecord struct {
	Epoch   uint64
	FromSeq uint64
	ToSeq   uint64
	File    string
}

// CheckpointRecord is the decoded payload of a TypeCheckpoint record: a
// durable base covering every batch with sequence number <= UptoSeq.
// GraphFile is an ID-preserving binary graph snapshot (graph.SaveSnapshot
// — an edge list would permute node IDs on reload and corrupt the packed
// index entries) and IndexFile a v3 index of it, both relative to the
// durability directory. Records at or before UptoSeq are dead once the
// checkpoint is durable, which is what licenses Rewrite.
type CheckpointRecord struct {
	Epoch     uint64
	UptoSeq   uint64
	GraphFile string
	IndexFile string
}

func appendUvarint(buf []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(buf, tmp[:n]...)
}

func appendString(buf []byte, s string) []byte {
	buf = appendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

type payloadReader struct {
	data []byte
	off  int
	err  error
}

func (r *payloadReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		r.err = fmt.Errorf("wal: truncated varint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *payloadReader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if uint64(len(r.data)-r.off) < n {
		r.err = fmt.Errorf("wal: truncated string at offset %d", r.off)
		return ""
	}
	s := string(r.data[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

func (r *payloadReader) finish(what string) error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.data) {
		return fmt.Errorf("wal: %d trailing bytes in %s payload", len(r.data)-r.off, what)
	}
	return nil
}

// EncodeBatch encodes a BatchRecord payload.
func EncodeBatch(b BatchRecord) []byte {
	buf := appendUvarint(nil, b.Epoch)
	buf = appendUvarint(buf, uint64(len(b.Edges)))
	for _, e := range b.Edges {
		buf = appendString(buf, e.Src)
		buf = appendString(buf, e.Label)
		buf = appendString(buf, e.Dst)
	}
	return buf
}

// DecodeBatch decodes a TypeBatch payload.
func DecodeBatch(payload []byte) (BatchRecord, error) {
	r := &payloadReader{data: payload}
	b := BatchRecord{Epoch: r.uvarint()}
	n := r.uvarint()
	if r.err == nil && n > uint64(len(payload)) {
		// Each edge takes at least 3 bytes; a count beyond the payload
		// size is garbage, not a huge batch.
		return BatchRecord{}, fmt.Errorf("wal: batch edge count %d exceeds payload", n)
	}
	for i := uint64(0); i < n && r.err == nil; i++ {
		b.Edges = append(b.Edges, graph.LabeledEdge{Src: r.str(), Label: r.str(), Dst: r.str()})
	}
	if err := r.finish("batch"); err != nil {
		return BatchRecord{}, err
	}
	return b, nil
}

// EncodeSpill encodes a SpillRecord payload.
func EncodeSpill(s SpillRecord) []byte {
	buf := appendUvarint(nil, s.Epoch)
	buf = appendUvarint(buf, s.FromSeq)
	buf = appendUvarint(buf, s.ToSeq)
	return appendString(buf, s.File)
}

// DecodeSpill decodes a TypeSpill payload.
func DecodeSpill(payload []byte) (SpillRecord, error) {
	r := &payloadReader{data: payload}
	s := SpillRecord{Epoch: r.uvarint(), FromSeq: r.uvarint(), ToSeq: r.uvarint(), File: r.str()}
	if err := r.finish("spill"); err != nil {
		return SpillRecord{}, err
	}
	return s, nil
}

// EncodeCheckpoint encodes a CheckpointRecord payload.
func EncodeCheckpoint(c CheckpointRecord) []byte {
	buf := appendUvarint(nil, c.Epoch)
	buf = appendUvarint(buf, c.UptoSeq)
	buf = appendString(buf, c.GraphFile)
	return appendString(buf, c.IndexFile)
}

// DecodeCheckpoint decodes a TypeCheckpoint payload.
func DecodeCheckpoint(payload []byte) (CheckpointRecord, error) {
	r := &payloadReader{data: payload}
	c := CheckpointRecord{Epoch: r.uvarint(), UptoSeq: r.uvarint(), GraphFile: r.str(), IndexFile: r.str()}
	if err := r.finish("checkpoint"); err != nil {
		return CheckpointRecord{}, err
	}
	return c, nil
}
