// Package wal implements the durable write-ahead edge log behind
// pathdb's live updates. The log is an append-only file of CRC-framed,
// length-prefixed records, fsync'd per append, so an update batch is on
// stable storage before the in-memory overlay ever sees it: a crash at
// any point loses at most the batch whose ApplyBatch had not yet
// returned.
//
// The log doubles as a log-structured manifest. Three record types
// share the file:
//
//   - Batch — one applied edge batch (the epoch it produced plus the
//     edges by name). Replaying batch records through the delta-join
//     maintenance path reconstructs the in-memory overlay tiers.
//   - Spill — a frozen overlay tier persisted as a format-v3 run file:
//     the file name and the contiguous batch-sequence range it covers.
//     Recovery loads the precomputed runs instead of re-deriving them,
//     bounding replay compute by the unspilled tail.
//   - Checkpoint — a durable (graph, index) pair capturing every batch
//     up to a sequence number. Rewriting the log down to its suffix
//     after a checkpoint is how the WAL is truncated.
//
// Torn tails are expected: Open scans records in order and truncates
// the file at the first frame whose length or checksum does not verify,
// which is exactly the state a crash mid-append leaves behind. Records
// before the tear are never touched; a record is only considered
// durable once Append has returned.
//
// The framing is deliberately self-contained (no external manifest, no
// side files) so that `rpq wal` can render the full durable state of a
// database from the one log file.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// Record types. The zero type is invalid so a zeroed frame never
// verifies.
const (
	// TypeBatch frames one applied edge batch.
	TypeBatch uint8 = 1
	// TypeSpill frames a tier spilled to a v3 run file.
	TypeSpill uint8 = 2
	// TypeCheckpoint frames a durable (graph, index) base pair.
	TypeCheckpoint uint8 = 3
)

// Record is one decoded log record. Payload is the type-specific
// encoding (see EncodeBatch/EncodeSpill/EncodeCheckpoint); Seq numbers
// are assigned by Append, strictly increasing within one log.
type Record struct {
	Seq     uint64
	Type    uint8
	Payload []byte
}

// fileHeader is the 8-byte log preamble: magic plus format version.
var fileHeader = []byte{'P', 'W', 'A', 'L', 1, 0, 0, 0}

// frameHead is seq(8) + type(1) + payloadLen(4); the frame ends with a
// CRC32C over head+payload.
const frameHeadLen = 8 + 1 + 4

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Log is an open write-ahead log. A Log is not safe for concurrent
// Append/Rewrite from multiple goroutines; pathdb serializes writers
// under its update mutex.
type Log struct {
	f       *os.File
	path    string
	sync    bool
	nextSeq uint64
	size    int64
	records int
}

// Open opens (creating if absent) the log at path, verifies and decodes
// every intact record, repairs a torn tail by truncating it, and
// returns the log positioned for appending together with the decoded
// records. With sync set, every Append is fsync'd before returning —
// the durability contract; unsync'd logs are for tests and benchmarks
// that measure the overlay without the disk.
func Open(path string, sync bool) (*Log, []Record, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: opening log: %w", err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: reading log: %w", err)
	}
	if len(data) == 0 {
		// Fresh log: write the header now so a crash before the first
		// append still leaves a well-formed (empty) log.
		if _, err := f.Write(fileHeader); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: writing log header: %w", err)
		}
		if sync {
			if err := f.Sync(); err != nil {
				f.Close()
				return nil, nil, fmt.Errorf("wal: syncing log header: %w", err)
			}
		}
		l := &Log{f: f, path: path, sync: sync, nextSeq: 1, size: int64(len(fileHeader))}
		return l, nil, nil
	}
	records, good, err := decodeAll(data)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if good < int64(len(data)) {
		// Torn or corrupt tail — the expected crash residue. Everything
		// before the tear is intact; drop the rest so the next append
		// starts at a clean frame boundary.
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: truncating torn tail: %w", err)
		}
		if sync {
			if err := f.Sync(); err != nil {
				f.Close()
				return nil, nil, fmt.Errorf("wal: syncing repaired log: %w", err)
			}
		}
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: seeking to log end: %w", err)
	}
	next := uint64(1)
	if n := len(records); n > 0 {
		next = records[n-1].Seq + 1
	}
	l := &Log{f: f, path: path, sync: sync, nextSeq: next, size: good, records: len(records)}
	return l, records, nil
}

// Inspect decodes the log at path without opening it for appending and
// without repairing anything — the read-only face of Open for tooling
// (`rpq wal`). It returns the intact records, the total file size, and
// the number of trailing bytes that fail to verify (torn crash residue
// Open would truncate; 0 for a clean log).
func Inspect(path string) (records []Record, size, torn int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("wal: reading log: %w", err)
	}
	records, good, err := decodeAll(data)
	if err != nil {
		return nil, int64(len(data)), 0, err
	}
	return records, int64(len(data)), int64(len(data)) - good, nil
}

// decodeAll walks the frames of a log image, returning the intact
// records and the byte offset of the first frame that fails to verify
// (== len(data) when the whole file is intact). A malformed header is a
// hard error — that is not crash residue, appends never touch it.
func decodeAll(data []byte) ([]Record, int64, error) {
	if len(data) < len(fileHeader) || string(data[:4]) != string(fileHeader[:4]) {
		return nil, 0, fmt.Errorf("wal: not a WAL file (bad magic)")
	}
	if data[4] != fileHeader[4] {
		return nil, 0, fmt.Errorf("wal: unsupported WAL version %d", data[4])
	}
	var records []Record
	off := int64(len(fileHeader))
	prevSeq := uint64(0)
	for {
		rest := data[off:]
		if len(rest) < frameHeadLen+4 {
			break
		}
		seq := binary.LittleEndian.Uint64(rest)
		typ := rest[8]
		plen := binary.LittleEndian.Uint32(rest[9:])
		total := int64(frameHeadLen) + int64(plen) + 4
		if int64(len(rest)) < total {
			break // torn payload
		}
		want := binary.LittleEndian.Uint32(rest[frameHeadLen+int(plen):])
		if crc32.Checksum(rest[:frameHeadLen+int(plen)], crcTable) != want {
			break // torn or corrupt frame
		}
		if typ == 0 || seq <= prevSeq {
			break // zeroed/garbage frame that happened to checksum
		}
		payload := make([]byte, plen)
		copy(payload, rest[frameHeadLen:frameHeadLen+int(plen)])
		records = append(records, Record{Seq: seq, Type: typ, Payload: payload})
		prevSeq = seq
		off += total
	}
	return records, off, nil
}

// appendFrame encodes one record frame.
func appendFrame(buf []byte, seq uint64, typ uint8, payload []byte) []byte {
	var head [frameHeadLen]byte
	binary.LittleEndian.PutUint64(head[:], seq)
	head[8] = typ
	binary.LittleEndian.PutUint32(head[9:], uint32(len(payload)))
	buf = append(buf, head[:]...)
	buf = append(buf, payload...)
	crc := crc32.Checksum(buf[len(buf)-frameHeadLen-len(payload):], crcTable)
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc)
	return append(buf, tail[:]...)
}

// Append writes one record and (for a sync log) fsyncs it, returning
// the assigned sequence number. When Append returns without error the
// record is durable; on error the caller must treat the batch as not
// applied (the next Open repairs any partial frame).
func (l *Log) Append(typ uint8, payload []byte) (uint64, error) {
	seq := l.nextSeq
	frame := appendFrame(nil, seq, typ, payload)
	if _, err := l.f.Write(frame); err != nil {
		return 0, fmt.Errorf("wal: appending record: %w", err)
	}
	if l.sync {
		if err := l.f.Sync(); err != nil {
			return 0, fmt.Errorf("wal: syncing record: %w", err)
		}
	}
	l.nextSeq = seq + 1
	l.size += int64(len(frame))
	l.records++
	return seq, nil
}

// Rewrite atomically replaces the log's contents with the given records
// (keeping their existing sequence numbers, which must be strictly
// increasing) — WAL truncation after a checkpoint. The replacement goes
// through a temp file + rename, so a crash mid-rewrite leaves either
// the old or the new log, never a mix. The log stays open for appends
// afterwards; sequence numbering continues from where it was (a
// truncation never reuses sequence numbers).
func (l *Log) Rewrite(records []Record) error {
	tmp := l.path + ".tmp"
	buf := append([]byte(nil), fileHeader...)
	prev := uint64(0)
	for _, r := range records {
		if r.Seq <= prev {
			return fmt.Errorf("wal: Rewrite records out of order (seq %d after %d)", r.Seq, prev)
		}
		prev = r.Seq
		buf = appendFrame(buf, r.Seq, r.Type, r.Payload)
	}
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return fmt.Errorf("wal: writing rewritten log: %w", err)
	}
	if l.sync {
		if err := syncFile(tmp); err != nil {
			return err
		}
	}
	if err := os.Rename(tmp, l.path); err != nil {
		return fmt.Errorf("wal: installing rewritten log: %w", err)
	}
	if l.sync {
		_ = syncDir(filepath.Dir(l.path))
	}
	f, err := os.OpenFile(l.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: reopening rewritten log: %w", err)
	}
	l.f.Close()
	l.f = f
	l.size = int64(len(buf))
	l.records = len(records)
	// nextSeq is preserved: truncation must never reuse sequence numbers
	// or later records could be mistaken for earlier ones.
	return nil
}

// Sync flushes the log to stable storage (a no-op after Append on a
// sync log).
func (l *Log) Sync() error { return l.f.Sync() }

// Close closes the log file.
func (l *Log) Close() error { return l.f.Close() }

// Path returns the log's file path.
func (l *Log) Path() string { return l.path }

// Size returns the log's current byte size.
func (l *Log) Size() int64 { return l.size }

// Records returns the number of records in the log (decoded at Open
// plus appended since).
func (l *Log) Records() int { return l.records }

// NextSeq returns the sequence number the next Append will assign.
func (l *Log) NextSeq() uint64 { return l.nextSeq }

func syncFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
