package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/graph"
)

func openT(t *testing.T, path string) (*Log, []Record) {
	t.Helper()
	l, recs, err := Open(path, false)
	if err != nil {
		t.Fatalf("Open(%s): %v", path, err)
	}
	return l, recs
}

func TestAppendReopenRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, recs := openT(t, path)
	if len(recs) != 0 {
		t.Fatalf("fresh log has %d records", len(recs))
	}
	payloads := [][]byte{[]byte("alpha"), []byte(""), bytes.Repeat([]byte{0xAB}, 1000)}
	for i, p := range payloads {
		seq, err := l.Append(TypeBatch, p)
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("Append %d assigned seq %d", i, seq)
		}
	}
	if l.Records() != 3 || l.NextSeq() != 4 {
		t.Fatalf("Records=%d NextSeq=%d", l.Records(), l.NextSeq())
	}
	l.Close()

	l2, recs := openT(t, path)
	defer l2.Close()
	if len(recs) != 3 {
		t.Fatalf("reopen decoded %d records, want 3", len(recs))
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) || r.Type != TypeBatch || !bytes.Equal(r.Payload, payloads[i]) {
			t.Fatalf("record %d = %+v", i, r)
		}
	}
	if l2.NextSeq() != 4 {
		t.Fatalf("reopen NextSeq=%d, want 4", l2.NextSeq())
	}
}

// TestTornTailEveryPrefix simulates a crash at every possible byte
// boundary of the final record: each truncated image must reopen with
// exactly the records whose frames fit intact, and appending afterwards
// must work.
func TestTornTailEveryPrefix(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	l, _ := openT(t, path)
	if _, err := l.Append(TypeBatch, []byte("first record")); err != nil {
		t.Fatal(err)
	}
	sizeAfterFirst := l.Size()
	if _, err := l.Append(TypeSpill, []byte("second record, torn in the test")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for cut := sizeAfterFirst; cut < int64(len(full)); cut++ {
		torn := filepath.Join(dir, "torn.log")
		if err := os.WriteFile(torn, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l2, recs, err := Open(torn, false)
		if err != nil {
			t.Fatalf("cut=%d: Open: %v", cut, err)
		}
		if len(recs) != 1 || string(recs[0].Payload) != "first record" {
			t.Fatalf("cut=%d: recovered %d records", cut, len(recs))
		}
		if seq, err := l2.Append(TypeBatch, []byte("after repair")); err != nil || seq != 2 {
			t.Fatalf("cut=%d: append after repair: seq=%d err=%v", cut, seq, err)
		}
		l2.Close()
		l3, recs := openT(t, torn)
		if len(recs) != 2 || string(recs[1].Payload) != "after repair" {
			t.Fatalf("cut=%d: re-reopen got %d records", cut, len(recs))
		}
		l3.Close()
	}
}

// TestCorruptFrameStopsDecode flips one byte in the middle record's
// payload: decode must stop before it even though the final frame is
// intact on disk (suffix records without their prefix are unusable).
func TestCorruptFrameStopsDecode(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _ := openT(t, path)
	l.Append(TypeBatch, []byte("aaaa"))
	start := l.Size()
	l.Append(TypeBatch, []byte("bbbb"))
	l.Append(TypeBatch, []byte("cccc"))
	l.Close()
	data, _ := os.ReadFile(path)
	data[start+frameHeadLen] ^= 0xFF // corrupt second record's payload
	os.WriteFile(path, data, 0o644)

	l2, recs := openT(t, path)
	defer l2.Close()
	if len(recs) != 1 || string(recs[0].Payload) != "aaaa" {
		t.Fatalf("recovered %d records after mid-log corruption", len(recs))
	}
	// The torn tail was truncated; sequence numbering resumes at 2.
	if l2.NextSeq() != 2 {
		t.Fatalf("NextSeq=%d after repair", l2.NextSeq())
	}
}

func TestBadHeaderRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	os.WriteFile(path, []byte("not a wal file at all"), 0o644)
	if _, _, err := Open(path, false); err == nil {
		t.Fatal("Open accepted a non-WAL file")
	}
}

func TestRewriteKeepsSuffixAndSeq(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _ := openT(t, path)
	for i := 0; i < 5; i++ {
		l.Append(TypeBatch, []byte{byte('a' + i)})
	}
	// Truncate to the last two records, as a checkpoint at seq 3 would.
	_, recs, err := Open(path, false)
	if err == nil {
		// Open on the same path while l holds it is fine on linux; we
		// only needed the decoded records.
		recs = recs[3:]
	} else {
		t.Fatal(err)
	}
	if err := l.Rewrite(recs); err != nil {
		t.Fatalf("Rewrite: %v", err)
	}
	if l.Records() != 2 {
		t.Fatalf("Records=%d after rewrite", l.Records())
	}
	if seq, err := l.Append(TypeBatch, []byte("f")); err != nil || seq != 6 {
		t.Fatalf("append after rewrite: seq=%d err=%v (must not reuse sequence numbers)", seq, err)
	}
	l.Close()

	l2, got := openT(t, path)
	defer l2.Close()
	want := []uint64{4, 5, 6}
	if len(got) != len(want) {
		t.Fatalf("reopen after rewrite: %d records", len(got))
	}
	for i, r := range got {
		if r.Seq != want[i] {
			t.Fatalf("record %d seq=%d want %d", i, r.Seq, want[i])
		}
	}
}

func TestRewriteRejectsOutOfOrder(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _ := openT(t, path)
	defer l.Close()
	err := l.Rewrite([]Record{{Seq: 2, Type: TypeBatch}, {Seq: 1, Type: TypeBatch}})
	if err == nil {
		t.Fatal("Rewrite accepted out-of-order records")
	}
}

func TestBatchCodecRoundTrip(t *testing.T) {
	in := BatchRecord{
		Epoch: 42,
		Edges: []graph.LabeledEdge{
			{Src: "a", Label: "knows", Dst: "b"},
			{Src: "", Label: "émile", Dst: "node with spaces"},
		},
	}
	out, err := DecodeBatch(EncodeBatch(in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
	empty, err := DecodeBatch(EncodeBatch(BatchRecord{Epoch: 7}))
	if err != nil || empty.Epoch != 7 || len(empty.Edges) != 0 {
		t.Fatalf("empty batch round trip: %+v, %v", empty, err)
	}
}

func TestSpillCheckpointCodecRoundTrip(t *testing.T) {
	s := SpillRecord{Epoch: 3, FromSeq: 10, ToSeq: 20, File: "spill-000020.pix"}
	gs, err := DecodeSpill(EncodeSpill(s))
	if err != nil || gs != s {
		t.Fatalf("spill round trip: %+v, %v", gs, err)
	}
	c := CheckpointRecord{Epoch: 9, UptoSeq: 20, GraphFile: "graph-000020.txt", IndexFile: "base-000020.pix"}
	gc, err := DecodeCheckpoint(EncodeCheckpoint(c))
	if err != nil || gc != c {
		t.Fatalf("checkpoint round trip: %+v, %v", gc, err)
	}
}

func TestDecodeRejectsTruncatedPayloads(t *testing.T) {
	full := EncodeBatch(BatchRecord{Epoch: 1, Edges: []graph.LabeledEdge{{Src: "a", Label: "l", Dst: "b"}}})
	for cut := 0; cut < len(full); cut++ {
		if _, err := DecodeBatch(full[:cut]); err == nil && cut != 0 {
			// cut==0 decodes as epoch 0 / no edges only if varints allow;
			// any other prefix must error.
			t.Fatalf("DecodeBatch accepted %d-byte prefix", cut)
		}
	}
	if _, err := DecodeBatch(append(full, 0)); err == nil {
		t.Fatal("DecodeBatch accepted trailing garbage")
	}
}
