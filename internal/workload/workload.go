// Package workload defines the query workloads of the experiments. The
// central one is the Advogato workload behind Figure 2 of Fletcher,
// Peters & Poulovassilis (EDBT 2016).
//
// The paper does not list its eight queries (they appear only in the
// companion MSc thesis), so Q1–Q8 here are representatives of the query
// classes the paper's discussion covers: compositions of increasing
// length, unions, inverse steps, and bounded recursions — including the
// paper's own worked-example shape R = ℓ ◦ (ℓ ◦ ℓ')^{2,4} ◦ ℓ'. Q9 and
// Q10 extend the workload with Kleene-closure classes (a restricted
// star answered by the reachability fast path, and a closure inside a
// composition evaluated by fixpoint), so the serving mix exercises the
// closure operators too. The workload exercises every rewrite and
// planning path; DESIGN.md records the substitution.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/rpq"
)

// Query is a named workload query.
type Query struct {
	Name string
	Text string
	Expr rpq.Expr
	// Class describes which query class the entry represents.
	Class string
}

// Advogato returns the ten-query workload over the Advogato trust
// labels (apprentice, journeyer, master): the eight query classes of
// the paper's discussion plus two Kleene-closure classes (Q9, Q10) that
// exercise the restricted reachability fast path and the general
// fixpoint closure operator.
func Advogato() []Query {
	qs := []struct{ name, class, text string }{
		{"Q1", "short composition", "master/journeyer"},
		{"Q2", "medium composition", "master/master/journeyer"},
		{"Q3", "long composition", "journeyer/master/journeyer/apprentice/master/journeyer"},
		{"Q4", "union of compositions", "master/journeyer|journeyer/apprentice/master"},
		{"Q5", "inverse steps", "master/journeyer^-/apprentice/master^-"},
		{"Q6", "bounded recursion", "(master|journeyer){1,3}"},
		{"Q7", "worked example shape", "master/(apprentice/master){2,3}/journeyer"},
		{"Q8", "mixed", "(master|journeyer^-)/apprentice{1,2}/(master/journeyer|apprentice)"},
		{"Q9", "restricted closure", "(master|journeyer)*"},
		{"Q10", "closure in composition", "master/(apprentice)*"},
	}
	out := make([]Query, len(qs))
	for i, q := range qs {
		out[i] = Query{Name: q.name, Text: q.text, Expr: rpq.MustParse(q.text), Class: q.class}
	}
	return out
}

// DefaultStarMaxScale caps the Advogato subsample on which the
// Kleene-closure classes (Q9, Q10) are generated and benchmarked.
// Closure answers are quadratic in SCC size, so the closure experiments
// never use the full-scale graph; the cap bounds their answer sets. It
// was 0.1 while closures were always materialized — output-sensitive
// streamed evaluation (which never holds the accumulated relation) lifts
// it to 0.4, four times the node count of the old fixture.
const DefaultStarMaxScale = 0.4

// StarScale clamps a requested Advogato scale for the closure classes:
// min(scale, maxScale), with maxScale <= 0 meaning DefaultStarMaxScale.
func StarScale(scale, maxScale float64) float64 {
	if maxScale <= 0 {
		maxScale = DefaultStarMaxScale
	}
	if scale < maxScale {
		return scale
	}
	return maxScale
}

// Lookup returns the Advogato workload query with the given name.
func Lookup(name string) (Query, error) {
	for _, q := range Advogato() {
		if q.Name == name {
			return q, nil
		}
	}
	return Query{}, fmt.Errorf("workload: unknown query %q", name)
}

// Zipf samples queries from a fixed list with a Zipf-skewed popularity
// distribution: query i (in list order) is drawn with probability
// proportional to 1/(i+1)^s, the standard model of serving traffic where
// a few hot queries dominate and a long tail recurs rarely. A Zipf is
// NOT safe for concurrent use; give each client goroutine its own
// sampler (with a distinct seed for independent streams).
type Zipf struct {
	queries []Query
	z       *rand.Zipf
}

// DefaultZipfExponent is the skew used when NewZipf is given an
// out-of-range exponent; math/rand requires s > 1.
const DefaultZipfExponent = 1.1

// NewZipf returns a Zipf sampler over queries with exponent s (> 1;
// larger is more skewed). queries must be non-empty.
func NewZipf(queries []Query, s float64, seed int64) *Zipf {
	if len(queries) == 0 {
		panic("workload: NewZipf requires at least one query")
	}
	if s <= 1 {
		s = DefaultZipfExponent
	}
	r := rand.New(rand.NewSource(seed))
	return &Zipf{
		queries: queries,
		z:       rand.NewZipf(r, s, 1, uint64(len(queries)-1)),
	}
}

// Next draws the next query.
func (z *Zipf) Next() Query { return z.queries[z.z.Uint64()] }

// Random generates n random queries over the given labels, for soak
// testing and the extended dataset experiments.
func Random(n int, labels []string, seed int64) []Query {
	r := rand.New(rand.NewSource(seed))
	opts := rpq.GenOptions{
		Labels:         labels,
		MaxDepth:       3,
		MaxFanout:      3,
		MaxRepeatBound: 3,
		AllowEpsilon:   false,
		AllowInverse:   true,
	}
	out := make([]Query, n)
	for i := range out {
		e := rpq.Generate(r, opts)
		out[i] = Query{
			Name:  fmt.Sprintf("R%d", i+1),
			Text:  e.String(),
			Expr:  e,
			Class: "random",
		}
	}
	return out
}
