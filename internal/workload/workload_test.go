package workload

import (
	"testing"

	"repro/internal/rewrite"
	"repro/internal/rpq"
)

func TestAdvogatoWorkloadShape(t *testing.T) {
	qs := Advogato()
	if len(qs) != 10 {
		t.Fatalf("workload has %d queries, want 10", len(qs))
	}
	names := map[string]bool{}
	for _, q := range qs {
		if names[q.Name] {
			t.Errorf("duplicate query name %s", q.Name)
		}
		names[q.Name] = true
		if q.Expr == nil || q.Text == "" || q.Class == "" {
			t.Errorf("%s incomplete: %+v", q.Name, q)
		}
		if err := rpq.Validate(q.Expr); err != nil {
			t.Errorf("%s invalid: %v", q.Name, err)
		}
		// Labels restricted to the Advogato vocabulary.
		for _, l := range rpq.Labels(q.Expr) {
			switch l {
			case "apprentice", "journeyer", "master":
			default:
				t.Errorf("%s uses non-Advogato label %q", q.Name, l)
			}
		}
		// Every query must be expandable with the default limits.
		if _, err := rewrite.Normalize(q.Expr, rewrite.Options{}); err != nil {
			t.Errorf("%s does not normalize: %v", q.Name, err)
		}
	}
}

func TestWorkloadCoversClasses(t *testing.T) {
	// At least one query with a union, one with an inverse, one with
	// bounded recursion — the classes the paper discusses — and one
	// Kleene closure, so the serving mix exercises the closure operators.
	var hasUnion, hasInverse, hasRecursion, hasClosure bool
	for _, q := range Advogato() {
		var walk func(e rpq.Expr)
		walk = func(e rpq.Expr) {
			switch v := e.(type) {
			case rpq.Union:
				hasUnion = true
				for _, a := range v.Alts {
					walk(a)
				}
			case rpq.Concat:
				for _, p := range v.Parts {
					walk(p)
				}
			case rpq.Repeat:
				hasRecursion = true
				if v.Max == rpq.Unbounded {
					hasClosure = true
				}
				walk(v.Sub)
			case rpq.Step:
				if v.Inverse {
					hasInverse = true
				}
			}
		}
		walk(q.Expr)
	}
	if !hasUnion || !hasInverse || !hasRecursion || !hasClosure {
		t.Errorf("workload classes missing: union=%v inverse=%v recursion=%v closure=%v",
			hasUnion, hasInverse, hasRecursion, hasClosure)
	}
}

func TestWorkedExampleShapePresent(t *testing.T) {
	q, err := Lookup("Q7")
	if err != nil {
		t.Fatal(err)
	}
	n, err := rewrite.Normalize(q.Expr, rewrite.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// ℓ ◦ (ℓ'◦ℓ)^{2,3} ◦ ℓ'' has the paper's Section 4 walk-through
	// shape and expands to exactly 2 disjuncts of lengths 6 and 8.
	if len(n.Paths) != 2 {
		t.Fatalf("Q7 expands to %d disjuncts, want 2", len(n.Paths))
	}
	for i, want := range []int{6, 8} {
		if len(n.Paths[i]) != want {
			t.Errorf("Q7 disjunct %d has length %d, want %d", i, len(n.Paths[i]), want)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("Q99"); err == nil {
		t.Error("unknown query should error")
	}
}

func TestRandomWorkload(t *testing.T) {
	qs := Random(20, []string{"a", "b"}, 42)
	if len(qs) != 20 {
		t.Fatalf("got %d queries", len(qs))
	}
	for _, q := range qs {
		if err := rpq.Validate(q.Expr); err != nil {
			t.Errorf("%s invalid: %v", q.Name, err)
		}
	}
	// Deterministic.
	qs2 := Random(20, []string{"a", "b"}, 42)
	for i := range qs {
		if qs[i].Text != qs2[i].Text {
			t.Errorf("Random not deterministic at %d: %q vs %q", i, qs[i].Text, qs2[i].Text)
		}
	}
}

func TestZipfSkewAndDeterminism(t *testing.T) {
	qs := Advogato()
	z1 := NewZipf(qs, 1.1, 42)
	z2 := NewZipf(qs, 1.1, 42)
	counts := map[string]int{}
	const draws = 10000
	for i := 0; i < draws; i++ {
		a, b := z1.Next(), z2.Next()
		if a.Name != b.Name {
			t.Fatal("same seed produced different streams")
		}
		counts[a.Name]++
	}
	// Zipf over list order: the first query must dominate, and every
	// query should appear at least once in 10k draws.
	if counts["Q1"] < draws/3 {
		t.Errorf("Q1 drawn %d/%d times; want the head of the distribution to dominate", counts["Q1"], draws)
	}
	if counts["Q1"] <= counts["Q8"] {
		t.Errorf("head Q1 (%d) not hotter than tail Q8 (%d)", counts["Q1"], counts["Q8"])
	}
	for _, q := range qs {
		if counts[q.Name] == 0 {
			t.Errorf("query %s never drawn; tail should still recur", q.Name)
		}
	}
}

func TestZipfExponentFallback(t *testing.T) {
	// s <= 1 is invalid for math/rand's Zipf; the constructor must fall
	// back instead of panicking.
	z := NewZipf(Advogato(), 0, 1)
	for i := 0; i < 100; i++ {
		z.Next()
	}
}
