// Package pathdb is a regular path query (RPQ) engine for directed,
// edge-labeled graphs, built on localized k-path indexes. It reproduces
// the system demonstrated in "Efficient regular path query evaluation
// using path indexes" (Fletcher, Peters & Poulovassilis, EDBT 2016).
//
// # Quick start
//
//	g := pathdb.NewGraph()
//	g.AddEdge("ada", "knows", "zoe")
//	g.AddEdge("zoe", "worksFor", "ada")
//	db, err := pathdb.Build(g, pathdb.Options{K: 2})
//	if err != nil { ... }
//	res, err := db.Query("knows/worksFor")
//	for _, pair := range res.Names { fmt.Println(pair[0], "->", pair[1]) }
//
// Queries are regular expressions over edge labels: `knows/worksFor^-`
// composes a forward step with an inverse step; `a|b` is disjunction;
// `(knows/worksFor){2,4}` is bounded recursion; `knows*` is Kleene
// closure, evaluated natively by semi-naive fixpoint iteration — or, for
// the restricted shape `(l1|...|lm)*`, by a cached reachability index —
// rather than by expansion, so closures over cyclic graphs terminate
// and stay fast. Answers follow the standard RPQ semantics: the set of
// node pairs connected by a path whose label sequence is in the
// expression's language.
//
// Four evaluation strategies from the paper are available; the default,
// StrategyMinSupport, uses an equi-depth selectivity histogram to place
// joins. See the Strategy constants.
//
// Beyond one-shot evaluation, a DB serves live traffic: Serve adds a
// plan-caching front end, ApplyBatch maintains the index under edge
// insertions by swapping in immutable engine snapshots (queries never
// block on writes), and Compact folds accumulated update tiers back
// into one index in bounded increments. BuildDurable/OpenDurable attach
// a write-ahead log so acknowledged batches survive crashes — reopening
// the same directory replays the log; see DurabilityOptions and
// docs/ARCHITECTURE.md for the full picture.
package pathdb

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/pathindex"
	"repro/internal/plan"
	"repro/internal/plancache"
	"repro/internal/rpq"
	"repro/internal/wal"
)

// Graph is a mutable, directed, edge-labeled graph. Create one with
// NewGraph, populate it with AddEdge, and pass it to Build (which
// freezes it).
type Graph = graph.Graph

// NewGraph returns an empty graph.
func NewGraph() *Graph { return graph.New() }

// LoadGraph reads a graph from an edge-list file with lines of the form
// "source label target" (see graph.ReadEdgeList for details).
func LoadGraph(path string) (*Graph, error) { return graph.LoadEdgeList(path) }

// Strategy selects the plan-generation algorithm (Section 4 of the
// paper).
type Strategy = plan.Strategy

// The four evaluation strategies of the paper.
const (
	// StrategyNaive fixes k at 1: single-label scans joined left to
	// right (stands in for automaton-based evaluation).
	StrategyNaive = plan.Naive
	// StrategySemiNaive chunks each disjunct greedily into length-k
	// segments joined left to right.
	StrategySemiNaive = plan.SemiNaive
	// StrategyMinSupport splits at the most selective k-subpath using
	// the histogram (the paper's recommended strategy).
	StrategyMinSupport = plan.MinSupport
	// StrategyMinJoin minimizes the number of joins, then picks the
	// cheapest segmentation and join order.
	StrategyMinJoin = plan.MinJoin
)

// ParseStrategy converts "naive", "semiNaive", "minSupport", or
// "minJoin" to a Strategy.
func ParseStrategy(name string) (Strategy, error) { return plan.ParseStrategy(name) }

// Strategies lists all strategies in presentation order.
func Strategies() []Strategy { return plan.Strategies() }

// Options configures Build. The zero value of every field other than K
// is a sensible default.
type Options struct {
	// K is the path-index locality parameter: label paths up to length
	// K are indexed. Larger K speeds up long queries at the cost of
	// index size and build time. Required, at least 1.
	K int
	// HistogramBuckets is the equi-depth histogram resolution used for
	// selectivity estimation; 0 keeps exact per-path counts.
	HistogramBuckets int
	// StarBound bounds unbounded repetitions when ExpandStars is set;
	// 0 uses the node count. Unused in the default closure mode.
	StarBound int
	// ExpandStars restores the legacy evaluation of unbounded
	// repetitions by StarBound-bounded expansion instead of the native
	// fixpoint/reachability closure operators. Kept as an ablation; the
	// expansion is exponential on multi-label stars.
	ExpandStars bool
	// MaxDisjuncts and MaxPathLength bound query expansion (guards
	// against exponential rewrites); 0 uses library defaults.
	MaxDisjuncts  int
	MaxPathLength int
	// MaxIndexEntries aborts Build if the index would exceed this many
	// entries; 0 means unlimited.
	MaxIndexEntries int
	// MaxTotalSteps caps the total expanded size of a query's normal
	// form (summed steps over all disjuncts) — the bound that keeps
	// legacy ExpandStars expansions from "succeeding" into huge operator
	// trees. 0 uses the library default.
	MaxTotalSteps int
	// CompactRatio is the delta/base entry ratio beyond which ApplyBatch
	// schedules a background compaction of the update overlay into a
	// fresh immutable index. 0 uses DefaultCompactRatio; a negative
	// value disables automatic compaction (Compact can still be called
	// explicitly).
	CompactRatio float64
	// Shards, when > 1, partitions the index by source node into that
	// many in-process shards: Build constructs one index partition per
	// shard (concurrently), queries scatter across the shards and gather
	// through a sorted merge, and SaveShardedIndex/Open round-trip the
	// layout as a directory of per-shard v3 files plus a manifest. 0 or 1
	// keeps the single-index layout.
	Shards int
}

// DefaultCompactRatio is the automatic-compaction trigger: once delta
// runs hold more than this fraction of the base index's entries, the
// overlay is folded in the background. Below it, the two-run merge at
// scan time costs little; above it, the fold is worth its one-time copy.
const DefaultCompactRatio = 0.25

// DB is an RPQ database: a frozen graph plus its k-path index and
// selectivity histogram, served through an atomically swappable engine
// snapshot. Reads are wait-free against writes: every query runs over
// the snapshot current when it started, ApplyBatch publishes a
// successor snapshot (graph + delta overlay) with one pointer store,
// and compaction folds accumulated deltas back into an immutable index
// in the background.
//
// A DB is safe for concurrent use: Query, QueryWith, QueryFrom,
// QueryParallel, Explain, and the read accessors may be called from any
// number of goroutines, SetDefaultStrategy is atomic, and ApplyBatch /
// Compact serialize among themselves without blocking readers. For
// serving heavy repeated traffic, Serve adds a plan cache on top.
type DB struct {
	engine          atomic.Pointer[core.Engine]
	defaultStrategy atomic.Int32

	// mu serializes mutations (ApplyBatch, Compact): single writer,
	// many wait-free readers.
	mu           sync.Mutex
	compactRatio float64
	compacting   atomic.Bool
	closed       atomic.Bool    // set by Close; stops new background compactions
	compactWG    sync.WaitGroup // in-flight background compactions, awaited by Close
	batches      atomic.Int64   // ApplyBatch calls that produced a new epoch
	compactions  atomic.Int64   // completed compactions

	// compactMu serializes compactions end to end (the incremental fold
	// runs outside mu so batches keep flowing); foldActive gates tier
	// merging off while a fold is in flight, because installing the fold
	// requires its source tiers to survive as a prefix of the stack.
	compactMu  sync.Mutex
	foldActive atomic.Bool

	// dur is the durable update state (WAL, spills, checkpoints) of a
	// DB opened with BuildDurable/OpenDurable; nil otherwise.
	dur *durableState

	// baseCloser releases the storage opened with the DB (the mapped
	// index file of Open); update snapshots layer over it without
	// changing what must eventually be closed.
	baseCloser io.Closer
}

// newDB wraps an engine in a DB with the default strategy set.
func newDB(engine *core.Engine, closer io.Closer, compactRatio float64) *DB {
	db := &DB{baseCloser: closer}
	if compactRatio == 0 {
		compactRatio = DefaultCompactRatio
	}
	db.compactRatio = compactRatio
	db.engine.Store(engine)
	db.SetDefaultStrategy(StrategyMinSupport)
	return db
}

// eng returns the current engine snapshot. Callers capture it once per
// operation so a concurrent swap cannot split one request across two
// snapshots.
func (db *DB) eng() *core.Engine { return db.engine.Load() }

// Build freezes g (if needed), constructs the k-path index and
// histogram, and returns a queryable database.
func Build(g *Graph, opts Options) (*DB, error) {
	if g == nil {
		return nil, fmt.Errorf("pathdb: nil graph")
	}
	g.Freeze()
	engine, err := core.NewEngine(g, opts.coreOptions())
	if err != nil {
		return nil, err
	}
	return newDB(engine, nil, opts.CompactRatio), nil
}

// SetDefaultStrategy changes the strategy used by Query. The initial
// default is StrategyMinSupport, the paper's recommended configuration.
// The switch is atomic, so it may race with in-flight queries (each
// query reads the default once).
func (db *DB) SetDefaultStrategy(s Strategy) { db.defaultStrategy.Store(int32(s)) }

// DefaultStrategy returns the strategy Query currently uses.
func (db *DB) DefaultStrategy() Strategy { return Strategy(db.defaultStrategy.Load()) }

// Pair is a query answer pair of node identifiers.
type Pair = pathindex.Pair

// ErrIndexClosed is the error (matched with errors.Is) behind queries
// and updates that start after DB.Close has released a memory-mapped
// index: the race with Close is lost deterministically instead of
// faulting on unmapped pages.
var ErrIndexClosed = pathindex.ErrClosed

// Result is a query answer.
type Result struct {
	// Pairs are the answer (source, target) node identifiers.
	Pairs []Pair
	// Names are the same answers as node-name tuples.
	Names [][2]string
	// Stats describes the evaluation (timings, plan estimates,
	// intermediate result sizes).
	Stats core.Stats
}

// Query evaluates an RPQ under the database's default strategy.
func (db *DB) Query(query string) (*Result, error) {
	return db.QueryWith(query, db.DefaultStrategy())
}

// QueryContext is Query under a cancellation scope: once ctx is done —
// cancelled or past its deadline — every operator of the running tree
// stops at its next batch boundary (the closure fixpoint and BFS loops
// check mid-batch as well) and ctx's error is returned. A cancelled
// query never returns partial pairs as an answer.
func (db *DB) QueryContext(ctx context.Context, query string) (*Result, error) {
	return db.QueryWithContext(ctx, query, db.DefaultStrategy())
}

// QueryWith evaluates an RPQ under an explicit strategy.
func (db *DB) QueryWith(query string, strategy Strategy) (*Result, error) {
	return db.QueryWithContext(context.Background(), query, strategy)
}

// QueryWithContext is QueryWith under a cancellation scope (see
// QueryContext).
func (db *DB) QueryWithContext(ctx context.Context, query string, strategy Strategy) (*Result, error) {
	e := db.eng()
	res, err := e.EvalQueryContext(ctx, query, strategy)
	if err != nil {
		return nil, err
	}
	return &Result{
		Pairs: res.Pairs,
		Names: e.NamedPairs(res.Pairs),
		Stats: res.Stats,
	}, nil
}

// QueryFrom evaluates an RPQ from a single named source node, returning
// the names of reachable targets sorted by node identifier. It uses the
// index's ⟨path, source⟩ prefix lookups instead of materializing the
// full pair relation, so it is much faster than Query for selective
// sources.
func (db *DB) QueryFrom(query, source string) ([]string, error) {
	return db.eng().EvalQueryFrom(query, source)
}

// QueryFromContext is QueryFrom under a cancellation scope: the
// sideways frontier expansion and its closure fixpoint check ctx
// between segments and BFS rounds.
func (db *DB) QueryFromContext(ctx context.Context, query, source string) ([]string, error) {
	return db.eng().EvalQueryFromContext(ctx, query, source)
}

// QueryParallel evaluates an RPQ with the disjuncts of its expansion
// executed concurrently by up to `workers` goroutines. Results equal
// QueryWith's up to order.
func (db *DB) QueryParallel(query string, strategy Strategy, workers int) (*Result, error) {
	return db.QueryParallelContext(context.Background(), query, strategy, workers)
}

// QueryParallelContext is QueryParallel under a cancellation scope:
// every worker's operator tree checks ctx at batch boundaries, so
// cancellation winds down all workers within about one batch each.
func (db *DB) QueryParallelContext(ctx context.Context, query string, strategy Strategy, workers int) (*Result, error) {
	expr, err := rpq.Parse(query)
	if err != nil {
		return nil, err
	}
	e := db.eng()
	prep, err := e.Compile(expr, strategy)
	if err != nil {
		return nil, err
	}
	res, err := prep.ExecuteParallelContext(ctx, workers)
	if err != nil {
		return nil, err
	}
	return &Result{
		Pairs: res.Pairs,
		Names: e.NamedPairs(res.Pairs),
		Stats: res.Stats,
	}, nil
}

// SaveIndex persists the k-path index to a file in format v1 (the
// copy-decoded stream format). The graph itself is not stored; pair
// BuildWithIndex with the same graph (e.g. reloaded from its edge list)
// to reuse the index. Prefer SaveIndexV3 (compressed) or SaveIndexV2
// (zero-copy mmap) for new files: both layouts open without an upfront
// decode step.
func (db *DB) SaveIndex(path string) error {
	return db.eng().Storage().(indexSaver).Save(path)
}

// SaveIndexV2 persists the k-path index to a file in the page-aligned
// format v2, which Open and pathindex.OpenMapped serve zero-copy via
// mmap — opening it later costs directory-only work regardless of index
// size.
func (db *DB) SaveIndexV2(path string) error {
	return db.eng().Storage().(indexSaver).SaveV2(path)
}

// SaveIndexV3 persists the k-path index to a file in the
// block-compressed format v3 (delta+varint packed runs), typically a
// fraction of the v2 size. Open auto-detects it and serves scans by
// block-granular decode-on-demand.
func (db *DB) SaveIndexV3(path string) error {
	return db.eng().Storage().(indexSaver).SaveV3(path)
}

// indexSaver is satisfied by every index storage (heap, mapped,
// compressed, and overlay — the latter folds its delta first).
type indexSaver interface {
	Save(path string) error
	SaveV2(path string) error
	SaveV3(path string) error
}

// SaveShardedIndex persists a sharded index as a directory: one v3 file
// per shard plus a manifest describing the partitioning. Open
// auto-detects the layout and restores the same shard structure. The DB
// must have been built with Options.Shards > 1 (or opened from a sharded
// layout); use SaveIndexV3 to fold a sharded index into one file.
func (db *DB) SaveShardedIndex(dir string) error {
	ss, ok := db.eng().Storage().(*pathindex.ShardedStorage)
	if !ok {
		return fmt.Errorf("pathdb: index is not sharded; build with Options.Shards > 1")
	}
	return ss.SaveSharded(dir)
}

// Open restores a ready-to-serve database from a graph edge-list file
// and an index file in format v2 or v3 (written by SaveIndexV2,
// SaveIndexV3, or the `rpq build` command) without rebuilding anything:
// the format is auto-detected, a v2 file is memory-mapped and scanned
// in place, and a v3 file is served by block-granular decode-on-scan
// over its compressed runs. Either way open time is independent of the
// relation payload. The returned DB serves exactly like one produced by
// Build with zero-valued non-K Options; a DB built with explicit
// rewrite limits or histogram resolution should be reopened with
// OpenWith and the same Options to answer identically. Call Close to
// release the storage when done.
func Open(graphPath, indexPath string) (*DB, error) {
	return OpenWith(graphPath, indexPath, Options{})
}

// OpenWith is Open with explicit engine options (histogram resolution,
// star bound, expansion limits). Options.K must be zero or match the
// saved index; the index itself is never rebuilt.
func OpenWith(graphPath, indexPath string, opts Options) (*DB, error) {
	g, err := graph.LoadEdgeList(graphPath)
	if err != nil {
		return nil, fmt.Errorf("pathdb: loading graph: %w", err)
	}
	var ix pathindex.Storage
	if pathindex.IsShardedPath(indexPath) {
		// A sharded layout (directory + manifest): open every per-shard
		// file and serve scatter-gather over them.
		ix, err = pathindex.OpenSharded(indexPath, g)
	} else {
		ix, err = pathindex.OpenStorage(indexPath, g)
	}
	if err != nil {
		return nil, err
	}
	closer, _ := ix.(io.Closer)
	if opts.K == 0 {
		opts.K = ix.K()
	}
	engine, err := core.NewEngineFromStorage(ix, opts.coreOptions())
	if err != nil {
		if closer != nil {
			closer.Close()
		}
		return nil, err
	}
	return newDB(engine, closer, opts.CompactRatio), nil
}

// Close releases resources held by the database: for a DB produced by
// Open this unmaps the index file. Close is safe to call concurrently
// with queries: the mapped index is reader-refcounted, so Close blocks
// until in-flight queries over it drain, and operations that would
// still read the mapping afterwards fail with ErrIndexClosed instead
// of faulting. Note that a Compact (explicit or automatic) folds the
// index onto the heap — after it, the DB no longer reads the file, so
// Close merely unmaps it and queries continue to work. Close also
// synchronizes with the automatic background compaction
// (Options.CompactRatio): compactions that have not started are
// stopped and one in flight is waited out before the storage is
// released. Close on a Build-produced DB releases nothing but still
// performs that synchronization.
func (db *DB) Close() error {
	// Stop background compactions first: a compaction that has not
	// started yet observes closed and backs off; one in flight is waited
	// out, so it can never swap a fresh engine into a closed DB or touch
	// the mapping mid-release.
	db.closed.Store(true)
	db.compactWG.Wait()
	var err error
	if db.dur != nil {
		err = db.dur.log.Close()
	}
	if db.baseCloser != nil {
		if cerr := db.baseCloser.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// LabeledEdge is one edge of an update batch: src --label--> dst by
// name. Names may reference existing nodes and labels or introduce new
// ones, exactly as Graph.AddEdge.
type LabeledEdge = graph.LabeledEdge

// ApplyBatch adds a batch of edges to the database without rebuilding
// the index. The update is computed off-line — a delta of every new
// length-≤K path the batch completes, joined against the immutable base
// index — and then published as a new engine snapshot with one atomic
// pointer swap, so concurrent queries never block and never observe a
// half-applied batch: a query runs either entirely before or entirely
// after the swap. Duplicate edges are tolerated and ignored.
//
// On a durable DB (BuildDurable/OpenDurable) the batch is appended to
// the write-ahead log — fsync'd, CRC-framed, atomic per batch — before
// the successor snapshot becomes visible, so an acknowledged batch
// survives a crash at any point.
//
// If the accumulated tiers exceed Options.CompactRatio of the base
// index, a background compaction is scheduled (see Compact). ApplyBatch
// calls serialize among themselves; an empty batch is a no-op.
func (db *DB) ApplyBatch(edges []LabeledEdge) error {
	if len(edges) == 0 {
		return nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	e := db.eng()
	var ne *core.Engine
	var err error
	if db.dur != nil {
		// Compute the successor first so a rejected batch never reaches
		// the log, then log it before publishing: everything visible is
		// durable, and a logged-but-unpublished batch (crash window) is
		// simply replayed on the next open.
		ne, err = e.ApplyBatchTagged(edges, db.dur.log.NextSeq())
		if err != nil {
			return err
		}
		if ne != e {
			payload := wal.EncodeBatch(wal.BatchRecord{Epoch: ne.Epoch(), Edges: edges})
			if _, err := db.dur.append(wal.TypeBatch, payload); err != nil {
				return err
			}
		}
	} else {
		ne, err = e.ApplyBatch(edges)
		if err != nil {
			return err
		}
	}
	if ne != e {
		db.engine.Store(ne)
		db.batches.Add(1)
	}
	db.maintainTiers()
	db.maybeCompact()
	return nil
}

// deltaRatioed is satisfied by both update storages (the legacy Overlay
// and the tiered Levels stack).
type deltaRatioed interface{ DeltaRatio() float64 }

// maybeCompact schedules a background compaction when the current
// snapshot's update tiers have outgrown the configured ratio. At most
// one compaction runs at a time. Called with db.mu held.
func (db *DB) maybeCompact() {
	if db.compactRatio < 0 {
		return
	}
	st, ok := db.eng().Storage().(deltaRatioed)
	if !ok || st.DeltaRatio() < db.compactRatio {
		return
	}
	if !db.compacting.CompareAndSwap(false, true) {
		return
	}
	// The WaitGroup is bumped here, before the goroutine exists, so
	// Close (which sets closed and then waits) either observes the count
	// and waits the compaction out, or the goroutine observes closed and
	// backs off — an engine can never be swapped into a closed DB.
	db.compactWG.Add(1)
	go func() {
		defer db.compactWG.Done()
		defer db.compacting.Store(false)
		if db.closed.Load() {
			return
		}
		// A failed background compaction (e.g. the DB was closed under
		// it) is dropped; the overlay keeps serving correctly and the
		// next ApplyBatch re-triggers.
		_ = db.Compact()
	}()
}

// Compact folds the current snapshot's update tiers into a fresh
// immutable heap index and atomically swaps the compacted snapshot in,
// resetting scan cost to one run per path. The fold is incremental:
// bounded steps (DurabilityOptions.CompactBudget entries each) run
// outside the update lock, so batches keep applying mid-compaction and
// no single step approaches the cost of a full rebuild; tiers pushed
// while the fold runs are re-stacked over the folded base when it is
// installed. Queries keep flowing throughout. On a durable DB a
// completed compaction is persisted as a checkpoint — graph snapshot
// plus v3 index — and the WAL is truncated to the suffix the checkpoint
// does not cover. It is a no-op when no updates have been applied since
// the last compaction.
func (db *DB) Compact() error {
	db.compactMu.Lock()
	defer db.compactMu.Unlock()

	db.mu.Lock()
	e := db.eng()
	if _, tiered := e.Storage().(*pathindex.Levels); !tiered {
		// Legacy overlay (or nothing to fold): the one-call path.
		ne, err := e.Compact()
		if err == nil && ne != e {
			db.engine.Store(ne)
			db.compactions.Add(1)
		}
		db.mu.Unlock()
		return err
	}
	job, err := e.StartCompact()
	if job == nil || err != nil {
		db.mu.Unlock()
		return err
	}
	db.foldActive.Store(true)
	db.mu.Unlock()
	defer db.foldActive.Store(false)

	budget := DefaultCompactBudget
	if db.dur != nil {
		budget = db.dur.opts.compactBudget()
	}
	for {
		t0 := time.Now()
		done := job.Step(budget)
		db.noteCompactStep(time.Since(t0).Microseconds())
		if done {
			break
		}
	}

	db.mu.Lock()
	ne, err := db.eng().FinishCompact(job)
	if err != nil {
		db.mu.Unlock()
		job.Abort()
		return err
	}
	db.engine.Store(ne)
	db.compactions.Add(1)
	db.mu.Unlock()

	if db.dur != nil {
		return db.checkpoint(job)
	}
	return nil
}

// UpdateStats describes the DB's live-update state.
type UpdateStats struct {
	// Epoch is the current snapshot number (0 until the first
	// ApplyBatch; +1 per applied batch or compaction).
	Epoch uint64
	// AppliedBatches and Compactions count completed mutations.
	AppliedBatches int64
	Compactions    int64
	// BaseEntries and DeltaEntries split the current index between the
	// immutable base and the accumulated update tiers (DeltaEntries is 0
	// right after a compaction); DeltaRatio is their quotient, compared
	// against Options.CompactRatio.
	BaseEntries  int
	DeltaEntries int
	DeltaRatio   float64
	// Tiers is the depth of the current update tier stack (0 for a
	// freshly built or compacted index, or legacy overlay storage).
	Tiers int
}

// UpdateStats returns a snapshot of the live-update state.
func (db *DB) UpdateStats() UpdateStats {
	e := db.eng()
	st := UpdateStats{
		Epoch:          e.Epoch(),
		AppliedBatches: db.batches.Load(),
		Compactions:    db.compactions.Load(),
		BaseEntries:    e.Storage().NumEntries(),
	}
	switch s := e.Storage().(type) {
	case *pathindex.Levels:
		st.BaseEntries = s.BaseEntries()
		st.DeltaEntries = s.DeltaEntries()
		st.DeltaRatio = s.DeltaRatio()
		st.Tiers = len(s.Tiers())
	case *pathindex.Overlay:
		st.BaseEntries = s.BaseEntries()
		st.DeltaEntries = s.DeltaEntries()
		st.DeltaRatio = s.DeltaRatio()
	case *pathindex.ShardedStorage:
		st.BaseEntries = s.BaseEntries()
		st.DeltaEntries = s.DeltaEntries()
		st.DeltaRatio = s.DeltaRatio()
	}
	return st
}

// ShardStats describes the DB's shard layout; Shards is 0 for an
// unsharded database.
type ShardStats struct {
	// Shards is the number of in-process index partitions.
	Shards int `json:"shards"`
	// Partitioner names the source→shard assignment ("hash" or "range").
	Partitioner string `json:"partitioner,omitempty"`
	// EntriesPerShard is each shard's ⟨path, src, dst⟩ entry count, in
	// shard order — the balance evidence for the partitioning function.
	EntriesPerShard []int `json:"entries_per_shard,omitempty"`
}

// ShardStats returns a snapshot of the shard layout of the current
// engine snapshot.
func (db *DB) ShardStats() ShardStats {
	ss, ok := db.eng().Storage().(*pathindex.ShardedStorage)
	if !ok {
		return ShardStats{}
	}
	st := ShardStats{Shards: ss.NumShards()}
	switch ss.Partitioner().(type) {
	case pathindex.HashPartitioner:
		st.Partitioner = "hash"
	case pathindex.RangePartitioner:
		st.Partitioner = "range"
	default:
		st.Partitioner = fmt.Sprintf("%T", ss.Partitioner())
	}
	for i := 0; i < ss.NumShards(); i++ {
		st.EntriesPerShard = append(st.EntriesPerShard, ss.Shard(i).NumEntries())
	}
	return st
}

// MigrateIndex rewrites a saved index file (any format version) as the
// current serving format — block-compressed v3 — at dst, making it
// servable by Open. g must be the graph the index was built from,
// exactly as for BuildWithIndex.
func MigrateIndex(src, dst string, g *Graph) error {
	if g == nil {
		return fmt.Errorf("pathdb: nil graph")
	}
	g.Freeze()
	return pathindex.Migrate(src, dst, g)
}

// BuildWithIndex opens a database over g using a previously saved index
// (either format version, decoded onto the heap) instead of rebuilding
// it. The index must have been built from an identical graph; the label
// vocabulary is verified on load. Prefer Open for v2 files — it maps the
// index instead of decoding it.
func BuildWithIndex(g *Graph, indexPath string, opts Options) (*DB, error) {
	if g == nil {
		return nil, fmt.Errorf("pathdb: nil graph")
	}
	g.Freeze()
	ix, err := pathindex.Load(indexPath, g)
	if err != nil {
		return nil, err
	}
	engine, err := core.NewEngineFromIndex(ix, core.Options{
		K:                ix.K(),
		HistogramBuckets: opts.HistogramBuckets,
		StarBound:        opts.StarBound,
		ExpandStars:      opts.ExpandStars,
		MaxDisjuncts:     opts.MaxDisjuncts,
		MaxPathLength:    opts.MaxPathLength,
		MaxTotalSteps:    opts.MaxTotalSteps,
	})
	if err != nil {
		return nil, err
	}
	return newDB(engine, nil, opts.CompactRatio), nil
}

// Explain returns the physical execution plan for a query as text.
func (db *DB) Explain(query string, strategy Strategy) (string, error) {
	return db.eng().Explain(query, strategy)
}

// Graph returns the underlying (frozen) graph of the current snapshot.
func (db *DB) Graph() *Graph { return db.eng().Graph() }

// K returns the index locality parameter.
func (db *DB) K() int { return db.eng().K() }

// IndexStats describes the built k-path index.
type IndexStats struct {
	Entries     int     // ⟨path, source, target⟩ entries
	LabelPaths  int     // distinct non-empty label paths of length ≤ K
	PathsKCount int     // |paths_k(G)|, the selectivity denominator
	BuildMillis float64 // index construction time

	// FileBytes is the on-disk size of the index for file-backed storage
	// (v2 mapped or v3 compressed); 0 for heap-backed indexes.
	FileBytes int
	// CompressionRatio is uncompressed payload bytes (8 per entry) over
	// FileBytes — ≈1 for v2, >1 for v3; 0 when FileBytes is 0.
	CompressionRatio float64
	// BlocksDecoded and BytesDecoded are cumulative decompression
	// counters for v3 storage (see also Stats.BlocksDecoded for the
	// per-query delta); 0 for storage that decodes nothing.
	BlocksDecoded int64
	BytesDecoded  int64
}

// IndexStats returns statistics about the index.
func (db *DB) IndexStats() IndexStats {
	storage := db.eng().Storage()
	st := storage.Stats()
	out := IndexStats{
		Entries:     st.Entries,
		LabelPaths:  st.LabelPaths,
		PathsKCount: st.PathsKCount,
		BuildMillis: float64(st.Duration.Microseconds()) / 1000.0,
	}
	if f, ok := storage.(interface{ FileBytes() int }); ok {
		out.FileBytes = f.FileBytes()
		if out.FileBytes > 0 {
			out.CompressionRatio = float64(8*out.Entries) / float64(out.FileBytes)
		}
	}
	if d, ok := storage.(interface{ DecodeStats() (int64, int64) }); ok {
		out.BlocksDecoded, out.BytesDecoded = d.DecodeStats()
	}
	return out
}

// Selectivity returns the histogram's selectivity estimate for a label
// path given as a textual query (which must be a plain composition of
// steps no longer than K), e.g. "knows/worksFor".
func (db *DB) Selectivity(labelPath string) (float64, error) {
	expr, err := rpq.Parse(labelPath)
	if err != nil {
		return 0, err
	}
	steps, err := asSteps(expr)
	if err != nil {
		return 0, err
	}
	e := db.eng()
	if len(steps) > e.K() {
		return 0, fmt.Errorf("pathdb: label path longer than index k=%d", e.K())
	}
	p, ok := pathindex.Resolve(e.Graph(), steps)
	if !ok {
		return 0, nil // unknown labels: empty relation
	}
	return e.Histogram().Selectivity(p), nil
}

// ServeOptions configures DB.Serve.
type ServeOptions struct {
	// CacheCapacity is the approximate number of compiled plans kept
	// across all cache shards; 0 uses a default of 1024 and a negative
	// value disables the cache (every request replans).
	CacheCapacity int
	// CacheShards is the plan cache's lock-sharding factor (rounded up
	// to a power of two); 0 uses a default of 8. More shards reduce
	// lock contention between concurrent clients.
	CacheShards int
	// NegativeCacheCapacity caps the separate side table of memoized
	// compile failures, so a stream of distinct failing queries can
	// never evict hot compiled plans; 0 uses CacheCapacity/8 (minimum
	// 16) and a negative value disables negative caching.
	NegativeCacheCapacity int
}

// CacheStats are the plan cache's counters.
type CacheStats = plancache.Stats

// ServeStats describe a Server's request traffic: total requests, full
// plan builds (cache misses), errors, and the underlying cache counters.
type ServeStats = core.ServeStats

// Server is a thread-safe query-serving front end over a DB: any number
// of client goroutines may call Query and QueryWith concurrently. It
// memoizes the rewrite+plan pipeline per (query, strategy) in a sharded
// LRU cache, keyed both by exact query text and by the canonical
// union-normal form, so semantically equal queries like "a/b|c" and
// "c|a/b" share one compiled plan. Execution state is always per call;
// only the immutable compiled plan is shared.
type Server struct {
	db       *DB
	srv      *core.Server
	strategy Strategy
}

// Serve returns a serving front end using the DB's default strategy (as
// read at this moment) for Query. Multiple servers over one DB are
// independent, each with its own cache. Servers track the DB's current
// snapshot: after ApplyBatch or Compact, new requests run over the new
// epoch and cached plans compiled against older epochs are recompiled
// lazily on their next use.
func (db *DB) Serve(opts ServeOptions) *Server {
	return &Server{
		db: db,
		srv: core.NewServer(core.EngineSourceFunc(db.eng), core.ServeOptions{
			CacheCapacity:         opts.CacheCapacity,
			CacheShards:           opts.CacheShards,
			NegativeCacheCapacity: opts.NegativeCacheCapacity,
		}),
		strategy: db.DefaultStrategy(),
	}
}

// Query evaluates an RPQ under the server's strategy, using the plan
// cache. Result.Stats.CacheHit reports whether planning was skipped.
func (s *Server) Query(query string) (*Result, error) {
	return s.QueryWith(query, s.strategy)
}

// QueryWith evaluates an RPQ under an explicit strategy, using the plan
// cache.
func (s *Server) QueryWith(query string, strategy Strategy) (*Result, error) {
	return s.QueryWithContext(context.Background(), query, strategy)
}

// QueryContext is Query under a cancellation scope (see DB.QueryContext
// for the cancellation contract).
func (s *Server) QueryContext(ctx context.Context, query string) (*Result, error) {
	return s.QueryWithContext(ctx, query, s.strategy)
}

// QueryWithContext is QueryWith under a cancellation scope.
func (s *Server) QueryWithContext(ctx context.Context, query string, strategy Strategy) (*Result, error) {
	prep, err := s.srv.Prepare(query, strategy)
	if err != nil {
		return nil, err
	}
	res, err := prep.ExecuteContext(ctx)
	if err != nil {
		return nil, err
	}
	return &Result{
		Pairs: res.Pairs,
		// Name against the snapshot that produced the pairs: a newer
		// epoch's graph may have more nodes, an older one fewer.
		Names: prep.Engine().NamedPairs(res.Pairs),
		Stats: res.Stats,
	}, nil
}

// Stats describes one query evaluation (timings, plan estimates,
// cardinalities); it is the type of Result.Stats and of the statistics
// StreamWith returns.
type Stats = core.Stats

// StreamWith evaluates an RPQ and delivers the answer incrementally:
// fn is called once per result batch, in stream order, before the next
// batch is computed — the full answer is never materialized by the
// server. pairs and names share indexes and are reused across calls, so
// fn must copy anything it retains. A non-nil error from fn aborts the
// evaluation and is returned; once ctx is done the operators stop and
// ctx's error is returned. The returned Stats describe the run up to
// that point (ResultPairs counts pairs actually delivered), so callers
// can report them for aborted requests too. Preparation rides the plan
// cache exactly like QueryWith.
func (s *Server) StreamWith(ctx context.Context, query string, strategy Strategy, fn func(pairs []Pair, names [][2]string) error) (Stats, error) {
	prep, err := s.srv.Prepare(query, strategy)
	if err != nil {
		return Stats{}, err
	}
	e := prep.Engine()
	return prep.StreamContext(ctx, func(batch []Pair) error {
		return fn(batch, e.NamedPairs(batch))
	})
}

// ExplainWith returns the physical plan text for query under strategy,
// riding the plan cache like QueryWith (an explain of a hot query costs
// a cache hit, not a replan).
func (s *Server) ExplainWith(query string, strategy Strategy) (string, error) {
	prep, err := s.srv.Prepare(query, strategy)
	if err != nil {
		return "", err
	}
	return prep.Explain(), nil
}

// Strategy returns the server's default strategy (fixed at Serve time).
func (s *Server) Strategy() Strategy { return s.strategy }

// Epoch returns the epoch of the engine snapshot new requests would run
// against right now.
func (s *Server) Epoch() uint64 { return s.srv.Engine().Epoch() }

// Stats returns a snapshot of the server's request and cache counters.
func (s *Server) Stats() ServeStats { return s.srv.Stats() }

// DB returns the served database.
func (s *Server) DB() *DB { return s.db }

// asSteps flattens a pure composition of steps.
func asSteps(e rpq.Expr) ([]rpq.Step, error) {
	switch v := e.(type) {
	case rpq.Step:
		return []rpq.Step{v}, nil
	case rpq.Concat:
		var out []rpq.Step
		for _, part := range v.Parts {
			sub, err := asSteps(part)
			if err != nil {
				return nil, err
			}
			out = append(out, sub...)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("pathdb: %s is not a plain label path", e)
	}
}
