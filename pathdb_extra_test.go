package pathdb

import (
	"path/filepath"
	"testing"

	"repro/internal/graph"
)

func TestQueryFrom(t *testing.T) {
	db := exampleDB(t, 3)
	// Example 3.1 through the public API: knows/knows/worksFor from jan.
	targets, err := db.QueryFrom("knows/knows/worksFor", "jan")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"ada": true, "jan": true, "kim": true}
	if len(targets) != 3 {
		t.Fatalf("targets = %v, want ada/jan/kim", targets)
	}
	for _, n := range targets {
		if !want[n] {
			t.Errorf("unexpected target %q", n)
		}
	}
	if _, err := db.QueryFrom("knows", "whoami"); err == nil {
		t.Error("unknown source should fail")
	}
}

func TestQueryFromAgreesWithQuery(t *testing.T) {
	db := exampleDB(t, 2)
	full, err := db.Query("knows{1,3}|worksFor^-")
	if err != nil {
		t.Fatal(err)
	}
	bySrc := map[string]map[string]bool{}
	for _, p := range full.Names {
		if bySrc[p[0]] == nil {
			bySrc[p[0]] = map[string]bool{}
		}
		bySrc[p[0]][p[1]] = true
	}
	g := db.Graph()
	for n := 0; n < g.NumNodes(); n++ {
		src := g.NodeName(graph.NodeID(n))
		targets, err := db.QueryFrom("knows{1,3}|worksFor^-", src)
		if err != nil {
			t.Fatal(err)
		}
		if len(targets) != len(bySrc[src]) {
			t.Errorf("source %s: QueryFrom %d targets, Query row %d", src, len(targets), len(bySrc[src]))
		}
		for _, tgt := range targets {
			if !bySrc[src][tgt] {
				t.Errorf("source %s: extra target %s", src, tgt)
			}
		}
	}
}

func TestQueryParallel(t *testing.T) {
	db := exampleDB(t, 2)
	seq, err := db.QueryWith("(knows|worksFor){1,3}", StrategyMinJoin)
	if err != nil {
		t.Fatal(err)
	}
	par, err := db.QueryParallel("(knows|worksFor){1,3}", StrategyMinJoin, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(par.Pairs) != len(seq.Pairs) {
		t.Errorf("parallel %d pairs, sequential %d", len(par.Pairs), len(seq.Pairs))
	}
	if _, err := db.QueryParallel("knows/(", StrategyNaive, 2); err == nil {
		t.Error("syntax error should surface")
	}
}

func TestSaveAndReopenIndex(t *testing.T) {
	g := graph.ExampleGraph()
	db, err := Build(g, Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "gex.pidx")
	if err := db.SaveIndex(path); err != nil {
		t.Fatal(err)
	}

	// Reopen over a freshly built identical graph.
	db2, err := BuildWithIndex(graph.ExampleGraph(), path, Options{HistogramBuckets: 8})
	if err != nil {
		t.Fatal(err)
	}
	if db2.K() != 2 {
		t.Errorf("reopened K = %d, want 2", db2.K())
	}
	a, err := db.Query("knows/knows|supervisor/worksFor^-")
	if err != nil {
		t.Fatal(err)
	}
	b, err := db2.Query("knows/knows|supervisor/worksFor^-")
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Pairs) != len(b.Pairs) {
		t.Errorf("reopened DB disagrees: %d vs %d pairs", len(b.Pairs), len(a.Pairs))
	}

	// Wrong graph must be rejected.
	other := NewGraph()
	other.AddEdge("x", "likes", "y")
	if _, err := BuildWithIndex(other, path, Options{}); err == nil {
		t.Error("index attached to an incompatible graph")
	}
	if _, err := BuildWithIndex(nil, path, Options{}); err == nil {
		t.Error("nil graph should fail")
	}
	if _, err := BuildWithIndex(NewGraph(), filepath.Join(t.TempDir(), "nope"), Options{}); err == nil {
		t.Error("missing index file should fail")
	}
}
