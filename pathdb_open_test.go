package pathdb_test

import (
	"os"
	"path/filepath"
	"slices"
	"strings"
	"testing"

	pathdb "repro"
)

func writeTestGraph(t *testing.T) string {
	t.Helper()
	lines := []string{
		"ada knows zoe", "zoe knows bob", "bob knows cid", "cid knows ada",
		"bob worksFor ada", "zoe worksFor ada", "cid worksFor zoe",
		"ada likes bob", "zoe likes cid",
	}
	path := filepath.Join(t.TempDir(), "graph.txt")
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func sortedNames(names [][2]string) [][2]string {
	out := slices.Clone(names)
	slices.SortFunc(out, func(a, b [2]string) int {
		if a[0] != b[0] {
			return strings.Compare(a[0], b[0])
		}
		return strings.Compare(a[1], b[1])
	})
	return out
}

// TestOpenServesWithoutRebuild is the save-once/open-many lifecycle:
// build once, persist the index in format v2, then Open must serve
// identical answers over the memory-mapped file with zero build work.
func TestOpenServesWithoutRebuild(t *testing.T) {
	graphPath := writeTestGraph(t)
	g, err := pathdb.LoadGraph(graphPath)
	if err != nil {
		t.Fatal(err)
	}
	built, err := pathdb.Build(g, pathdb.Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	indexPath := filepath.Join(t.TempDir(), "graph.pix")
	if err := built.SaveIndexV2(indexPath); err != nil {
		t.Fatal(err)
	}

	opened, err := pathdb.Open(graphPath, indexPath)
	if err != nil {
		t.Fatal(err)
	}
	defer opened.Close()

	ws, bs := built.IndexStats(), opened.IndexStats()
	if bs.Entries != ws.Entries || bs.LabelPaths != ws.LabelPaths || bs.PathsKCount != ws.PathsKCount {
		t.Fatalf("opened index shape %+v differs from built %+v", bs, ws)
	}
	if bs.BuildMillis != 0 {
		t.Errorf("opened index reports build time %.2f ms; nothing should have been built", bs.BuildMillis)
	}

	queries := []string{
		"knows/worksFor", "knows{1,3}", "likes|worksFor^-", "knows*",
		"(knows/likes)?", "worksFor^-/knows",
	}
	for _, q := range queries {
		for _, s := range pathdb.Strategies() {
			want, err := built.QueryWith(q, s)
			if err != nil {
				t.Fatalf("built eval of %q: %v", q, err)
			}
			got, err := opened.QueryWith(q, s)
			if err != nil {
				t.Fatalf("opened eval of %q: %v", q, err)
			}
			if !slices.Equal(sortedNames(got.Names), sortedNames(want.Names)) {
				t.Fatalf("Open result for %q under %v differs from Build", q, s)
			}
		}
		wantFrom, err := built.QueryFrom(q, "ada")
		if err != nil {
			t.Fatalf("built QueryFrom(%q): %v", q, err)
		}
		gotFrom, err := opened.QueryFrom(q, "ada")
		if err != nil {
			t.Fatalf("opened QueryFrom(%q): %v", q, err)
		}
		if !slices.Equal(gotFrom, wantFrom) {
			t.Fatalf("Open QueryFrom for %q differs from Build", q)
		}
	}

	// The serving layer runs over the mapping too.
	srv := opened.Serve(pathdb.ServeOptions{})
	res, err := srv.Query("knows/worksFor")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) == 0 {
		t.Error("served query over mapped index returned no pairs")
	}
}

// TestOpenWithHonorsOptions reopens with the same non-default engine
// options as the original Build and checks the answers track them (in
// the legacy ExpandStars mode, the star bound changes how far `knows*`
// expands on the 4-cycle; the default closure mode computes the full
// fixpoint).
func TestOpenWithHonorsOptions(t *testing.T) {
	graphPath := writeTestGraph(t)
	g, err := pathdb.LoadGraph(graphPath)
	if err != nil {
		t.Fatal(err)
	}
	opts := pathdb.Options{K: 2, StarBound: 1, ExpandStars: true}
	built, err := pathdb.Build(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	indexPath := filepath.Join(t.TempDir(), "graph.pix")
	if err := built.SaveIndexV2(indexPath); err != nil {
		t.Fatal(err)
	}
	reopened, err := pathdb.OpenWith(graphPath, indexPath, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	want, err := built.Query("knows*")
	if err != nil {
		t.Fatal(err)
	}
	got, err := reopened.Query("knows*")
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(sortedNames(got.Names), sortedNames(want.Names)) {
		t.Fatal("OpenWith with matching options disagrees with Build")
	}
	// The default Open (star bound = node count) must expand further on
	// this cycle than the bound-1 engine, proving the option actually
	// reached the rewriter.
	unbounded, err := pathdb.Open(graphPath, indexPath)
	if err != nil {
		t.Fatal(err)
	}
	defer unbounded.Close()
	full, err := unbounded.Query("knows*")
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Pairs) <= len(want.Pairs) {
		t.Fatalf("unbounded knows* yields %d pairs, bounded %d; star bound did not take effect", len(full.Pairs), len(want.Pairs))
	}
}

func TestOpenErrors(t *testing.T) {
	graphPath := writeTestGraph(t)
	dir := t.TempDir()

	if _, err := pathdb.Open(filepath.Join(dir, "missing.txt"), filepath.Join(dir, "missing.pix")); err == nil {
		t.Error("Open with a missing graph file succeeded")
	}
	if _, err := pathdb.Open(graphPath, filepath.Join(dir, "missing.pix")); err == nil {
		t.Error("Open with a missing index file succeeded")
	}

	// A v1 index must be rejected with a pointer at migration, not
	// mis-parsed.
	g, err := pathdb.LoadGraph(graphPath)
	if err != nil {
		t.Fatal(err)
	}
	db, err := pathdb.Build(g, pathdb.Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	v1 := filepath.Join(dir, "graph.v1")
	if err := db.SaveIndex(v1); err != nil {
		t.Fatal(err)
	}
	if _, err := pathdb.Open(graphPath, v1); err == nil {
		t.Error("Open accepted a v1 index file")
	} else if !strings.Contains(err.Error(), "v1") {
		t.Errorf("Open error on a v1 file should mention the version; got %v", err)
	}

	// Close on a Build-produced DB is a harmless no-op.
	if err := db.Close(); err != nil {
		t.Errorf("Close on a built DB: %v", err)
	}
}
