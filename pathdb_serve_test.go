package pathdb_test

import (
	"sync"
	"testing"

	pathdb "repro"
)

func serveTestDB(t *testing.T) *pathdb.DB {
	t.Helper()
	g := pathdb.NewGraph()
	g.AddEdge("ada", "knows", "zoe")
	g.AddEdge("zoe", "knows", "kim")
	g.AddEdge("kim", "worksFor", "ada")
	g.AddEdge("zoe", "worksFor", "ada")
	g.AddEdge("ada", "worksFor", "kim")
	db, err := pathdb.Build(g, pathdb.Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestServeMatchesQuery(t *testing.T) {
	db := serveTestDB(t)
	srv := db.Serve(pathdb.ServeOptions{CacheCapacity: 16})
	queries := []string{"knows/worksFor", "knows|worksFor", "(knows){1,2}", "worksFor^-/knows"}
	for round := 0; round < 2; round++ {
		for _, q := range queries {
			want, err := db.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			got, err := srv.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Pairs) != len(want.Pairs) || len(got.Names) != len(want.Names) {
				t.Fatalf("round %d: served %q returned %d pairs, want %d", round, q, len(got.Pairs), len(want.Pairs))
			}
			if round == 1 && !got.Stats.CacheHit {
				t.Errorf("round 1: %q missed the warm cache", q)
			}
		}
	}
	st := srv.Stats()
	// db.Query does not go through the server: only the two served
	// rounds count as requests.
	if st.Requests != int64(2*len(queries)) {
		t.Errorf("Requests = %d, want %d", st.Requests, 2*len(queries))
	}
	if st.PlanBuilds != int64(len(queries)) {
		t.Errorf("PlanBuilds = %d, want %d (one per distinct query)", st.PlanBuilds, len(queries))
	}
	if hr := st.HitRate(); hr != 0.5 {
		t.Errorf("HitRate = %v, want 0.5 (second round all hits)", hr)
	}
}

func TestServeCanonicalSharing(t *testing.T) {
	db := serveTestDB(t)
	srv := db.Serve(pathdb.ServeOptions{CacheCapacity: 16})
	if _, err := srv.Query("knows/worksFor|knows"); err != nil {
		t.Fatal(err)
	}
	res, err := srv.Query("knows|knows/worksFor")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.CacheHit {
		t.Error("semantically equal query text missed the canonical cache tier")
	}
}

func TestServeConcurrentClients(t *testing.T) {
	db := serveTestDB(t)
	srv := db.Serve(pathdb.ServeOptions{CacheCapacity: 8, CacheShards: 2})
	queries := []string{"knows/worksFor", "knows|worksFor", "knows{1,2}"}
	want := make(map[string]int)
	for _, q := range queries {
		res, err := db.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		want[q] = len(res.Pairs)
	}
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				q := queries[(w+i)%len(queries)]
				res, err := srv.Query(q)
				if err != nil {
					t.Error(err)
					return
				}
				if len(res.Pairs) != want[q] {
					t.Errorf("concurrent served %q: %d pairs, want %d", q, len(res.Pairs), want[q])
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if st := srv.Stats(); st.Requests != 160 || st.Errors != 0 {
		t.Errorf("stats = %+v, want 160 requests, 0 errors", st)
	}
}

func TestSetDefaultStrategyConcurrent(t *testing.T) {
	db := serveTestDB(t)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if w%2 == 0 {
					db.SetDefaultStrategy(pathdb.Strategies()[i%4])
				} else if _, err := db.Query("knows/worksFor"); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
