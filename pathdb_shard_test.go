package pathdb_test

import (
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"testing"

	pathdb "repro"
)

// buildDurableShardedT is buildDurableT with a sharded engine: the WAL
// and recovery machinery are identical, only the index layout changes.
func buildDurableShardedT(t *testing.T, seed int64, dir string, shards int, d pathdb.DurabilityOptions) *pathdb.DB {
	t.Helper()
	d.Dir = dir
	d.NoSync = true
	db, err := pathdb.BuildDurable(durableBase(seed), pathdb.Options{K: 2, CompactRatio: -1, Shards: shards}, d)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestShardedBuildOpenRoundTrip: Build with Options.Shards partitions
// the index, SaveShardedIndex persists the directory layout, and Open
// auto-detects it — with answers identical to the unsharded build under
// every strategy.
func TestShardedBuildOpenRoundTrip(t *testing.T) {
	graphPath := writeTestGraph(t)
	g, err := pathdb.LoadGraph(graphPath)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := pathdb.Build(g, pathdb.Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}

	g2, err := pathdb.LoadGraph(graphPath)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := pathdb.Build(g2, pathdb.Options{K: 2, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	st := sharded.ShardStats()
	if st.Shards != 3 || st.Partitioner != "hash" || len(st.EntriesPerShard) != 3 {
		t.Fatalf("ShardStats after sharded build: %+v", st)
	}
	total := 0
	for _, n := range st.EntriesPerShard {
		total += n
	}
	if total != sharded.IndexStats().Entries {
		t.Fatalf("per-shard entries sum to %d, index reports %d", total, sharded.IndexStats().Entries)
	}

	// The unsharded DB refuses the sharded save path and reports no shards.
	if err := plain.SaveShardedIndex(filepath.Join(t.TempDir(), "x.pixd")); err == nil {
		t.Fatal("SaveShardedIndex on an unsharded DB succeeded")
	}
	if ps := plain.ShardStats(); ps.Shards != 0 {
		t.Fatalf("unsharded DB reports shards: %+v", ps)
	}

	dir := filepath.Join(t.TempDir(), "index.pixd")
	if err := sharded.SaveShardedIndex(dir); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(filepath.Join(dir, "SHARDS.json")); err != nil || fi.IsDir() {
		t.Fatalf("sharded layout has no manifest: %v", err)
	}
	opened, err := pathdb.Open(graphPath, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer opened.Close()
	if got := opened.ShardStats(); got.Shards != 3 || got.Partitioner != "hash" {
		t.Fatalf("ShardStats after sharded open: %+v", got)
	}

	queries := []string{
		"knows/worksFor", "knows{1,3}", "likes|worksFor^-", "knows*",
		"(knows/likes)?", "worksFor^-/knows",
	}
	for _, q := range queries {
		for _, s := range pathdb.Strategies() {
			want, err := plain.QueryWith(q, s)
			if err != nil {
				t.Fatal(err)
			}
			for name, db := range map[string]*pathdb.DB{"built": sharded, "opened": opened} {
				got, err := db.QueryWith(q, s)
				if err != nil {
					t.Fatalf("%s sharded eval of %q: %v", name, q, err)
				}
				if !slices.Equal(sortedNames(got.Names), sortedNames(want.Names)) {
					t.Fatalf("%s sharded result for %q under %v differs from unsharded", name, q, s)
				}
			}
		}
		wantFrom, err := plain.QueryFrom(q, "ada")
		if err != nil {
			t.Fatal(err)
		}
		gotFrom, err := opened.QueryFrom(q, "ada")
		if err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(gotFrom, wantFrom) {
			t.Fatalf("sharded QueryFrom for %q differs from unsharded", q)
		}
	}

	// EXPLAIN over the opened sharded DB surfaces the scatter shape.
	srv := opened.Serve(pathdb.ServeOptions{})
	text, err := srv.ExplainWith("knows/worksFor", pathdb.Strategies()[0])
	if err != nil {
		t.Fatal(err)
	}
	if !containsAll(text, "scatter", "gather") {
		t.Fatalf("sharded EXPLAIN lacks the scatter/gather shape:\n%s", text)
	}
}

func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		found := false
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// TestShardedDurableRecoverRoundTrip: the WAL round trip of
// TestDurableRecoverRoundTrip with a sharded engine — replayed batches
// are routed to the owning shards and the recovered DB keeps its shard
// layout.
func TestShardedDurableRecoverRoundTrip(t *testing.T) {
	const seed = 31
	dir := t.TempDir()
	batches := durableBatches(seed, 4, 25)
	db := buildDurableShardedT(t, seed, dir, 3, pathdb.DurabilityOptions{SpillEntries: -1})
	for _, b := range batches {
		if err := db.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	oracle := prefixOracle(t, seed, batches, len(batches))
	checkAllStrategies(t, db, oracle, "sharded before close")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := buildDurableShardedT(t, seed, dir, 3, pathdb.DurabilityOptions{SpillEntries: -1})
	defer db2.Close()
	if st := db2.ShardStats(); st.Shards != 3 {
		t.Fatalf("recovered DB lost its shard layout: %+v", st)
	}
	st := db2.DurabilityStats()
	if !st.Enabled || st.RecoveredBatches != int64(len(batches)) {
		t.Fatalf("DurabilityStats after sharded recovery: %+v", st)
	}
	// Sharded lineages never spill — recovery is pure batch replay.
	if st.RecoveredSpills != 0 || st.Spills != 0 {
		t.Fatalf("sharded durability wrote spills: %+v", st)
	}
	checkAllStrategies(t, db2, oracle, "sharded after recovery")

	// Compaction folds the per-shard overlays and keeps serving correctly.
	if err := db2.Compact(); err != nil {
		t.Fatal(err)
	}
	if us := db2.UpdateStats(); us.DeltaEntries != 0 {
		t.Fatalf("%d delta entries survive a sharded Compact", us.DeltaEntries)
	}
	checkAllStrategies(t, db2, oracle, "sharded after compact")
	if err := db2.ApplyBatch([]pathdb.LabeledEdge{{Src: "p00", Label: "knows", Dst: "p33"}}); err != nil {
		t.Fatal(err)
	}
}

// TestShardedDurableTornTailSweep is the crash-window differential with
// Shards > 1: every WAL truncation point must recover a clean batch
// prefix whose answers match an unsharded from-scratch rebuild.
func TestShardedDurableTornTailSweep(t *testing.T) {
	const seed = 32
	srcDir := t.TempDir()
	batches := durableBatches(seed, 3, 12)
	db := buildDurableShardedT(t, seed, srcDir, 3, pathdb.DurabilityOptions{SpillEntries: -1})
	for _, b := range batches {
		if err := db.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(filepath.Join(srcDir, pathdb.WALFileName))
	if err != nil {
		t.Fatal(err)
	}
	oracles := make([]*pathdb.DB, len(batches)+1)
	for n := range oracles {
		oracles[n] = prefixOracle(t, seed, batches, n)
	}

	for cut := 8; cut <= len(full); cut += 13 {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, pathdb.WALFileName), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		db2 := buildDurableShardedT(t, seed, dir, 3, pathdb.DurabilityOptions{SpillEntries: -1})
		n := db2.DurabilityStats().RecoveredBatches
		if n < 0 || n > int64(len(batches)) {
			t.Fatalf("cut=%d: recovered %d batches", cut, n)
		}
		if st := db2.ShardStats(); st.Shards != 3 {
			t.Fatalf("cut=%d: recovered DB lost its shard layout: %+v", cut, st)
		}
		checkAllStrategies(t, db2, oracles[n], fmt.Sprintf("sharded cut=%d (prefix %d)", cut, n))
		db2.Close()
	}
}
