package pathdb

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/graph"
)

func exampleDB(t testing.TB, k int) *DB {
	t.Helper()
	db, err := Build(graph.ExampleGraph(), Options{K: k})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, Options{K: 1}); err == nil {
		t.Error("nil graph should fail")
	}
	if _, err := Build(NewGraph(), Options{K: 0}); err == nil {
		t.Error("K=0 should fail")
	}
}

func TestQuickstartFlow(t *testing.T) {
	g := NewGraph()
	g.AddEdge("ada", "knows", "zoe")
	g.AddEdge("zoe", "worksFor", "ada")
	db, err := Build(g, Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("knows/worksFor")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Names) != 1 || res.Names[0] != [2]string{"ada", "ada"} {
		t.Errorf("knows/worksFor = %v", res.Names)
	}
}

func TestQueryWithAllStrategies(t *testing.T) {
	db := exampleDB(t, 2)
	var sizes []int
	for _, s := range Strategies() {
		res, err := db.QueryWith("knows/knows|worksFor^-", s)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		sizes = append(sizes, len(res.Pairs))
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] != sizes[0] {
			t.Errorf("strategies disagree on result size: %v", sizes)
		}
	}
}

func TestDefaultStrategy(t *testing.T) {
	db := exampleDB(t, 2)
	a, err := db.Query("knows")
	if err != nil {
		t.Fatal(err)
	}
	db.SetDefaultStrategy(StrategyNaive)
	b, err := db.Query("knows")
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Pairs) != len(b.Pairs) {
		t.Error("default strategy change altered results")
	}
}

func TestExplain(t *testing.T) {
	db := exampleDB(t, 3)
	out, err := db.Explain("knows/(knows/worksFor){2,4}/worksFor", StrategySemiNaive)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "merge-join") {
		t.Errorf("Explain output unexpected:\n%s", out)
	}
}

func TestIndexStats(t *testing.T) {
	db := exampleDB(t, 2)
	st := db.IndexStats()
	if st.Entries == 0 || st.LabelPaths == 0 || st.PathsKCount == 0 {
		t.Errorf("IndexStats incomplete: %+v", st)
	}
	if db.K() != 2 {
		t.Errorf("K = %d", db.K())
	}
}

func TestSelectivity(t *testing.T) {
	db := exampleDB(t, 2)
	sel, err := db.Selectivity("supervisor/knows")
	if err != nil {
		t.Fatal(err)
	}
	if sel < 0 || sel > 0.2 {
		t.Errorf("supervisor/knows selectivity = %g, expected small", sel)
	}
	if _, err := db.Selectivity("knows/knows/knows"); err == nil {
		t.Error("path longer than k should error")
	}
	if _, err := db.Selectivity("knows|worksFor"); err == nil {
		t.Error("non-path expression should error")
	}
	sel, err = db.Selectivity("unknownlabel")
	if err != nil || sel != 0 {
		t.Errorf("unknown label selectivity = %g, %v", sel, err)
	}
}

func TestLoadGraph(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	content := "x knows y\ny knows z\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := LoadGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Build(g, Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("knows/knows")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Names) != 1 || res.Names[0] != [2]string{"x", "z"} {
		t.Errorf("knows/knows = %v", res.Names)
	}
	if _, err := LoadGraph(filepath.Join(dir, "missing.txt")); err == nil {
		t.Error("missing file should error")
	}
}

func TestQueryErrors(t *testing.T) {
	db := exampleDB(t, 1)
	if _, err := db.Query("knows/("); err == nil {
		t.Error("syntax error should surface")
	}
}

func TestStatsExposed(t *testing.T) {
	db := exampleDB(t, 2)
	res, err := db.Query("knows{1,2}")
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Disjuncts != 2 {
		t.Errorf("Disjuncts = %d, want 2", res.Stats.Disjuncts)
	}
	if res.Stats.ExecTime <= 0 {
		t.Error("ExecTime missing")
	}
}
