package pathdb_test

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	pathdb "repro"
)

// buildUpdateFixture returns a DB over a base graph, the update batch
// held out of it, and an oracle DB over the full graph. Node names are
// shared, so answers compare by name.
func buildUpdateFixture(t *testing.T, seed int64, holdout float64) (db, oracle *pathdb.DB, batch []pathdb.LabeledEdge) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	labels := []string{"knows", "worksFor"}
	base, full := pathdb.NewGraph(), pathdb.NewGraph()
	const nodes = 40
	name := func(n int) string { return fmt.Sprintf("p%02d", n) }
	for _, l := range labels {
		for e := 0; e < 120; e++ {
			s, d := name(r.Intn(nodes)), name(r.Intn(nodes))
			full.AddEdge(s, l, d)
			if r.Float64() < holdout {
				batch = append(batch, pathdb.LabeledEdge{Src: s, Label: l, Dst: d})
			} else {
				base.AddEdge(s, l, d)
			}
		}
	}
	var err error
	if db, err = pathdb.Build(base, pathdb.Options{K: 2, CompactRatio: -1}); err != nil {
		t.Fatal(err)
	}
	if oracle, err = pathdb.Build(full, pathdb.Options{K: 2}); err != nil {
		t.Fatal(err)
	}
	return db, oracle, batch
}

func queryNames(t *testing.T, db *pathdb.DB, q string) [][2]string {
	t.Helper()
	res, err := db.Query(q)
	if err != nil {
		t.Fatalf("query %q: %v", q, err)
	}
	return sortedNames(res.Names)
}

// TestApplyBatchMatchesRebuild: the public update path must answer
// queries identically to a from-scratch rebuild, before and after
// compaction, across plain paths, inverses, unions, and closures.
func TestApplyBatchMatchesRebuild(t *testing.T) {
	db, oracle, batch := buildUpdateFixture(t, 11, 0.15)
	if err := db.ApplyBatch(batch); err != nil {
		t.Fatal(err)
	}
	st := db.UpdateStats()
	if st.Epoch != 1 || st.AppliedBatches != 1 {
		t.Fatalf("UpdateStats after one batch: %+v", st)
	}
	if st.DeltaEntries == 0 {
		t.Fatal("batch produced no delta entries")
	}
	queries := []string{
		"knows", "knows/worksFor", "knows|worksFor", "knows^-/worksFor",
		"(knows|worksFor){1,2}", "knows*", "(knows|worksFor^-)*",
	}
	for _, q := range queries {
		if got, want := queryNames(t, db, q), queryNames(t, oracle, q); !slices.Equal(got, want) {
			t.Errorf("%q: updated DB %d pairs, rebuild %d", q, len(got), len(want))
		}
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	st = db.UpdateStats()
	if st.Compactions != 1 || st.DeltaEntries != 0 || st.Epoch != 2 {
		t.Fatalf("UpdateStats after Compact: %+v", st)
	}
	for _, q := range queries {
		if got, want := queryNames(t, db, q), queryNames(t, oracle, q); !slices.Equal(got, want) {
			t.Errorf("%q after Compact: updated DB %d pairs, rebuild %d", q, len(got), len(want))
		}
	}
	// QueryFrom and QueryParallel run over the same snapshot machinery.
	src := queryNames(t, oracle, "knows")[0][0]
	a, err := db.QueryFrom("knows/worksFor", src)
	if err != nil {
		t.Fatal(err)
	}
	b, err := oracle.QueryFrom("knows/worksFor", src)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(a, b) {
		t.Errorf("QueryFrom disagrees with rebuild")
	}
	pr, err := db.QueryParallel("knows|worksFor", pathdb.StrategyMinSupport, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(sortedNames(pr.Names), queryNames(t, oracle, "knows|worksFor")) {
		t.Errorf("QueryParallel disagrees with rebuild")
	}
}

// TestApplyBatchNewVocabulary: updates may introduce nodes and labels
// the base graph never saw.
func TestApplyBatchNewVocabulary(t *testing.T) {
	g := pathdb.NewGraph()
	g.AddEdge("ada", "knows", "zoe")
	db, err := pathdb.Build(g, pathdb.Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.ApplyBatch([]pathdb.LabeledEdge{
		{Src: "zoe", Label: "mentors", Dst: "newcomer"},
	}); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("knows/mentors")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Names) != 1 || res.Names[0] != [2]string{"ada", "newcomer"} {
		t.Fatalf("knows/mentors = %v, want ada->newcomer", res.Names)
	}
}

// TestServerSeesUpdates: a Server created before an update must serve
// the new snapshot afterwards, recompiling its cached plan lazily.
func TestServerSeesUpdates(t *testing.T) {
	db, oracle, batch := buildUpdateFixture(t, 12, 0.1)
	srv := db.Serve(pathdb.ServeOptions{CacheCapacity: 32})
	const q = "knows/worksFor"
	if _, err := srv.Query(q); err != nil {
		t.Fatal(err)
	}
	warm, err := srv.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Stats.CacheHit {
		t.Fatal("warm query missed the cache")
	}
	if err := db.ApplyBatch(batch); err != nil {
		t.Fatal(err)
	}
	res, err := srv.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CacheHit {
		t.Error("stale plan served after ApplyBatch")
	}
	if got, want := sortedNames(res.Names), queryNames(t, oracle, q); !slices.Equal(got, want) {
		t.Errorf("served answer after update: %d pairs, rebuild %d", len(got), len(want))
	}
}

// TestAutoCompaction: once the delta outgrows CompactRatio, ApplyBatch
// must schedule a background compaction that folds the overlay.
func TestAutoCompaction(t *testing.T) {
	g := pathdb.NewGraph()
	for i := 0; i < 20; i++ {
		g.AddEdge(fmt.Sprintf("n%d", i), "a", fmt.Sprintf("n%d", (i+1)%20))
	}
	db, err := pathdb.Build(g, pathdb.Options{K: 2, CompactRatio: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	var batch []pathdb.LabeledEdge
	for i := 0; i < 20; i++ {
		batch = append(batch, pathdb.LabeledEdge{Src: fmt.Sprintf("n%d", i), Label: "a", Dst: fmt.Sprintf("n%d", (i+7)%20)})
	}
	if err := db.ApplyBatch(batch); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := db.UpdateStats()
		if st.Compactions >= 1 && st.DeltaEntries == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background compaction never ran: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	res, err := db.Query("a/a")
	if err != nil {
		t.Fatal(err)
	}
	// Each node reaches {i+2, i+8, i+14} in two steps over cycle+chords.
	if len(res.Pairs) != 60 {
		t.Fatalf("a/a after auto-compaction: %d pairs, want 60", len(res.Pairs))
	}
}

// TestCloseDuringAutoCompaction is the Close-vs-background-compaction
// regression test: a tiny CompactRatio makes every ApplyBatch spawn an
// asynchronous Compact, and Close must either cancel a compaction that
// has not started or wait out one that has — never unmap the base index
// from under it. Run under -race in CI.
func TestCloseDuringAutoCompaction(t *testing.T) {
	graphPath := writeTestGraph(t)
	// Several open/close cycles to hit different interleavings: closing
	// right after the ApplyBatch that spawned the compaction, and after
	// a short delay that lets it get into the merge.
	for round := 0; round < 8; round++ {
		g, err := pathdb.LoadGraph(graphPath)
		if err != nil {
			t.Fatal(err)
		}
		built, err := pathdb.Build(g, pathdb.Options{K: 2})
		if err != nil {
			t.Fatal(err)
		}
		indexPath := filepath.Join(t.TempDir(), "graph.pix")
		if err := built.SaveIndexV2(indexPath); err != nil {
			t.Fatal(err)
		}
		db, err := pathdb.OpenWith(graphPath, indexPath, pathdb.Options{K: 2, CompactRatio: 1e-6})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 1+round%3; i++ {
			edge := pathdb.LabeledEdge{Src: fmt.Sprintf("new%d", i), Label: "knows", Dst: "ada"}
			if err := db.ApplyBatch([]pathdb.LabeledEdge{edge}); err != nil {
				t.Fatal(err)
			}
		}
		if round%2 == 1 {
			time.Sleep(time.Duration(round) * 100 * time.Microsecond)
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
		// By the time Close returns the compaction either never started
		// (cancelled) or ran to completion (waited out). Cancelled leaves
		// the engine on the now-unmapped base, so operations fail with
		// ErrIndexClosed; completed leaves it on the heap, so they still
		// work (the documented Close semantics). Torn state — a fault, a
		// wrong answer, a race report — is the bug this test exists for.
		res, err := db.Query("knows")
		if err != nil {
			if !strings.Contains(err.Error(), "closed") {
				t.Fatalf("query after Close returned %v, want success or index-closed error", err)
			}
		} else if len(res.Pairs) == 0 {
			t.Fatal("query after Close-with-completed-compaction lost the relation")
		}
		if err := db.ApplyBatch([]pathdb.LabeledEdge{{Src: "x", Label: "knows", Dst: "y"}}); err != nil && !errors.Is(err, pathdb.ErrIndexClosed) {
			t.Fatalf("ApplyBatch after Close returned %v, want nil or ErrIndexClosed", err)
		}
	}
}

// TestCloseDuringQueries is the use-after-munmap regression test: Close
// on a mapped DB racing in-flight queries must block until they drain;
// queries that start after Close fail with a deterministic error. Run
// under -race in CI.
func TestCloseDuringQueries(t *testing.T) {
	graphPath := writeTestGraph(t)
	g, err := pathdb.LoadGraph(graphPath)
	if err != nil {
		t.Fatal(err)
	}
	built, err := pathdb.Build(g, pathdb.Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	indexPath := filepath.Join(t.TempDir(), "graph.pix")
	if err := built.SaveIndexV2(indexPath); err != nil {
		t.Fatal(err)
	}
	db, err := pathdb.Open(graphPath, indexPath)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	var (
		wg       sync.WaitGroup
		started  sync.WaitGroup
		ok, fail atomic.Int64
	)
	queries := []string{"knows/knows", "knows|worksFor", "knows^-/likes", "knows*"}
	started.Add(workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			startedOnce := false
			for i := 0; ; i++ {
				_, err := db.Query(queries[(w+i)%len(queries)])
				switch {
				case err == nil:
					ok.Add(1)
				case strings.Contains(err.Error(), "closed"):
					fail.Add(1)
					if !startedOnce {
						started.Done()
					}
					return
				default:
					t.Errorf("unexpected query error: %v", err)
					if !startedOnce {
						started.Done()
					}
					return
				}
				if !startedOnce {
					startedOnce = true
					started.Done()
				}
			}
		}(w)
	}
	started.Wait() // every worker has completed at least one query (or bailed)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if ok.Load() == 0 {
		t.Error("no query succeeded before Close")
	}
	if fail.Load() != workers {
		t.Errorf("%d workers ended on the closed error, want %d", fail.Load(), workers)
	}
	// After Close, new queries fail deterministically.
	if _, err := db.Query("knows"); err == nil || !strings.Contains(err.Error(), "closed") {
		t.Errorf("query after Close returned %v, want index-closed error", err)
	}
	// And updates fail the same way rather than reading unmapped runs.
	err = db.ApplyBatch([]pathdb.LabeledEdge{{Src: "ada", Label: "knows", Dst: "bob"}})
	if err == nil || !errors.Is(err, pathdb.ErrIndexClosed) {
		t.Errorf("ApplyBatch after Close returned %v, want ErrIndexClosed", err)
	}
}
