package pathdb_test

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"slices"
	"testing"

	pathdb "repro"
	"repro/internal/wal"
)

// durableQueries exercises plain paths, inverses, unions, bounded
// repetition, and Kleene closures — the shapes that route differently
// through the planner.
var durableQueries = []string{
	"knows", "knows/worksFor", "knows|worksFor", "knows^-/worksFor",
	"(knows|worksFor){1,2}", "knows*", "(knows|worksFor^-)*",
}

// durableBase deterministically reconstructs the same base graph on
// every call — the contract BuildDurable puts on its callers: recovery
// replays the WAL over an identical base.
func durableBase(seed int64) *pathdb.Graph {
	r := rand.New(rand.NewSource(seed))
	g := pathdb.NewGraph()
	for _, l := range []string{"knows", "worksFor"} {
		for e := 0; e < 80; e++ {
			g.AddEdge(fmt.Sprintf("p%02d", r.Intn(30)), l, fmt.Sprintf("p%02d", r.Intn(30)))
		}
	}
	return g
}

// durableBatches deals deterministic update batches (disjoint from the
// base seed's stream).
func durableBatches(seed int64, n, perBatch int) [][]pathdb.LabeledEdge {
	r := rand.New(rand.NewSource(seed ^ 0x5a5a))
	batches := make([][]pathdb.LabeledEdge, n)
	for i := range batches {
		for e := 0; e < perBatch; e++ {
			batches[i] = append(batches[i], pathdb.LabeledEdge{
				Src:   fmt.Sprintf("p%02d", r.Intn(34)), // may mint new nodes
				Label: []string{"knows", "worksFor"}[r.Intn(2)],
				Dst:   fmt.Sprintf("p%02d", r.Intn(34)),
			})
		}
	}
	return batches
}

// prefixOracle rebuilds from scratch over the base plus the first n
// batches — the recovery differential's ground truth.
func prefixOracle(t *testing.T, seed int64, batches [][]pathdb.LabeledEdge, n int) *pathdb.DB {
	t.Helper()
	full := durableBase(seed)
	for i := 0; i < n; i++ {
		for _, e := range batches[i] {
			full.AddEdge(e.Src, e.Label, e.Dst)
		}
	}
	db, err := pathdb.Build(full, pathdb.Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// checkAllStrategies compares db against oracle on every durable query
// under all four strategies.
func checkAllStrategies(t *testing.T, db, oracle *pathdb.DB, context string) {
	t.Helper()
	for _, q := range durableQueries {
		for _, s := range pathdb.Strategies() {
			got, err := db.QueryWith(q, s)
			if err != nil {
				t.Fatalf("%s: %q under %v: %v", context, q, s, err)
			}
			want, err := oracle.QueryWith(q, s)
			if err != nil {
				t.Fatalf("%s: oracle %q under %v: %v", context, q, s, err)
			}
			if !slices.Equal(sortedNames(got.Names), sortedNames(want.Names)) {
				t.Fatalf("%s: %q under %v: %d pairs, rebuild has %d",
					context, q, s, len(got.Names), len(want.Names))
			}
		}
	}
}

func buildDurableT(t *testing.T, seed int64, dir string, d pathdb.DurabilityOptions) *pathdb.DB {
	t.Helper()
	d.Dir = dir
	d.NoSync = true // tests simulate crashes with file surgery, not power loss
	db, err := pathdb.BuildDurable(durableBase(seed), pathdb.Options{K: 2, CompactRatio: -1}, d)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestDurableRecoverRoundTrip: apply batches, close cleanly, reopen the
// same directory — the recovered DB must answer every query under every
// strategy exactly like a from-scratch rebuild over the full graph.
func TestDurableRecoverRoundTrip(t *testing.T) {
	const seed = 21
	dir := t.TempDir()
	batches := durableBatches(seed, 4, 25)
	db := buildDurableT(t, seed, dir, pathdb.DurabilityOptions{SpillEntries: -1})
	for _, b := range batches {
		if err := db.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	epochBefore := db.UpdateStats().Epoch
	oracle := prefixOracle(t, seed, batches, len(batches))
	checkAllStrategies(t, db, oracle, "before close")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := buildDurableT(t, seed, dir, pathdb.DurabilityOptions{SpillEntries: -1})
	defer db2.Close()
	checkAllStrategies(t, db2, oracle, "after recovery")
	st := db2.DurabilityStats()
	if !st.Enabled || st.RecoveredBatches != int64(len(batches)) || st.RecoveredSpills != 0 {
		t.Fatalf("DurabilityStats after recovery: %+v", st)
	}
	if got := db2.UpdateStats().Epoch; got < epochBefore {
		t.Fatalf("recovered epoch %d regressed below %d", got, epochBefore)
	}
	// Updates continue after recovery.
	if err := db2.ApplyBatch([]pathdb.LabeledEdge{{Src: "p00", Label: "knows", Dst: "p33"}}); err != nil {
		t.Fatal(err)
	}
}

// TestDurableTornTailSweep simulates a crash at every byte boundary of
// the WAL tail: each truncated image must recover to a clean batch
// prefix (never a partial batch) and answer exactly like a rebuild over
// that prefix — the crash-window differential.
func TestDurableTornTailSweep(t *testing.T) {
	const seed = 22
	srcDir := t.TempDir()
	batches := durableBatches(seed, 3, 12)
	db := buildDurableT(t, seed, srcDir, pathdb.DurabilityOptions{SpillEntries: -1})
	for _, b := range batches {
		if err := db.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(filepath.Join(srcDir, pathdb.WALFileName))
	if err != nil {
		t.Fatal(err)
	}
	oracles := make([]*pathdb.DB, len(batches)+1)
	for n := range oracles {
		oracles[n] = prefixOracle(t, seed, batches, n)
	}

	// Sweep every truncation point after the header. Decoding stops at
	// the tear, so each cut recovers some prefix of the batch stream.
	for cut := 8; cut <= len(full); cut += 7 {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, pathdb.WALFileName), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		db2 := buildDurableT(t, seed, dir, pathdb.DurabilityOptions{SpillEntries: -1})
		n := db2.DurabilityStats().RecoveredBatches
		if n < 0 || n > int64(len(batches)) {
			t.Fatalf("cut=%d: recovered %d batches", cut, n)
		}
		checkAllStrategies(t, db2, oracles[n], fmt.Sprintf("cut=%d (prefix %d)", cut, n))
		db2.Close()
	}
}

// TestDurableSpillShortcutAndCorruption: with an aggressive spill
// policy recovery loads precomputed tier runs instead of replaying
// batches; corrupting or deleting the spill files must silently fall
// back to batch replay with identical answers.
func TestDurableSpillShortcutAndCorruption(t *testing.T) {
	const seed = 23
	dir := t.TempDir()
	batches := durableBatches(seed, 4, 30)
	db := buildDurableT(t, seed, dir, pathdb.DurabilityOptions{SpillEntries: 1})
	for _, b := range batches {
		if err := db.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	if st := db.DurabilityStats(); st.Spills == 0 || st.SpilledTiers == 0 {
		t.Fatalf("aggressive spill policy wrote no spills: %+v", st)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	oracle := prefixOracle(t, seed, batches, len(batches))

	db2 := buildDurableT(t, seed, dir, pathdb.DurabilityOptions{SpillEntries: 1})
	st := db2.DurabilityStats()
	if st.RecoveredSpills == 0 {
		t.Fatalf("recovery took no spill shortcuts: %+v", st)
	}
	checkAllStrategies(t, db2, oracle, "spill-shortcut recovery")
	db2.Close()

	// Corrupt every spill file mid-payload: recovery must detect it
	// (checksummed v3 blocks / length validation) and replay instead.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := 0
	for _, ent := range ents {
		name := ent.Name()
		if len(name) < 6 || name[:6] != "spill-" {
			continue
		}
		p := filepath.Join(dir, name)
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) > 16 {
			data[len(data)/2] ^= 0xFF
			if err := os.WriteFile(p, data[:len(data)-3], 0o644); err != nil {
				t.Fatal(err)
			}
			corrupted++
		}
	}
	if corrupted == 0 {
		t.Fatal("no spill files found to corrupt")
	}
	db3 := buildDurableT(t, seed, dir, pathdb.DurabilityOptions{SpillEntries: -1})
	st = db3.DurabilityStats()
	if st.RecoveredSpills != 0 || st.RecoveredBatches == 0 {
		t.Fatalf("corrupt spills were not refused: %+v", st)
	}
	checkAllStrategies(t, db3, oracle, "corrupt-spill fallback")
	db3.Close()

	// Deleting them entirely behaves the same (partial-spill crash window).
	for _, ent := range ents {
		if len(ent.Name()) >= 6 && ent.Name()[:6] == "spill-" {
			os.Remove(filepath.Join(dir, ent.Name()))
		}
	}
	db4 := buildDurableT(t, seed, dir, pathdb.DurabilityOptions{SpillEntries: -1})
	checkAllStrategies(t, db4, oracle, "missing-spill fallback")
	db4.Close()
}

// TestDurableCheckpointTruncatesWAL: Compact on a durable DB must
// persist a checkpoint, truncate the WAL to the uncovered suffix, and
// recovery must restore from the checkpoint base (the original base
// graph is no longer consulted) plus the post-checkpoint tail.
func TestDurableCheckpointTruncatesWAL(t *testing.T) {
	const seed = 24
	dir := t.TempDir()
	batches := durableBatches(seed, 5, 20)
	db := buildDurableT(t, seed, dir, pathdb.DurabilityOptions{SpillEntries: -1})
	for _, b := range batches[:3] {
		if err := db.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	st := db.DurabilityStats()
	if st.Checkpoints != 1 || st.CheckpointSeq == 0 {
		t.Fatalf("Compact wrote no checkpoint: %+v", st)
	}
	if st.WALRecords != 1 { // just the checkpoint record
		t.Fatalf("WAL holds %d records after checkpoint, want 1", st.WALRecords)
	}
	for _, b := range batches[3:] {
		if err := db.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	oracle := prefixOracle(t, seed, batches, len(batches))
	db2 := buildDurableT(t, seed, dir, pathdb.DurabilityOptions{SpillEntries: -1})
	defer db2.Close()
	st = db2.DurabilityStats()
	if st.CheckpointSeq == 0 {
		t.Fatalf("recovery ignored the checkpoint: %+v", st)
	}
	if st.RecoveredBatches != 2 {
		t.Fatalf("recovered %d batches after the checkpoint, want 2", st.RecoveredBatches)
	}
	checkAllStrategies(t, db2, oracle, "checkpoint recovery")
}

// TestOpenDurableSupersedesBaseFiles: an OpenDurable deployment starts
// from saved (graph, index) files; after a checkpoint those files are
// superseded and may disappear entirely without affecting recovery.
func TestOpenDurableSupersedesBaseFiles(t *testing.T) {
	graphPath := writeTestGraph(t)
	g, err := pathdb.LoadGraph(graphPath)
	if err != nil {
		t.Fatal(err)
	}
	built, err := pathdb.Build(g, pathdb.Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	indexPath := filepath.Join(t.TempDir(), "base.pix")
	if err := built.SaveIndexV3(indexPath); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	dopts := pathdb.DurabilityOptions{Dir: dir, NoSync: true, SpillEntries: -1}
	opts := pathdb.Options{CompactRatio: -1}

	db, err := pathdb.OpenDurable(graphPath, indexPath, opts, dopts)
	if err != nil {
		t.Fatal(err)
	}
	batch := []pathdb.LabeledEdge{
		{Src: "ada", Label: "mentors", Dst: "zoe"},
		{Src: "zoe", Label: "mentors", Dst: "bob"},
	}
	if err := db.ApplyBatch(batch); err != nil {
		t.Fatal(err)
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := db.ApplyBatch([]pathdb.LabeledEdge{{Src: "bob", Label: "mentors", Dst: "cid"}}); err != nil {
		t.Fatal(err)
	}
	want := queryNames(t, db, "mentors/mentors")
	if len(want) != 2 { // ada->bob, zoe->cid
		t.Fatalf("mentors/mentors = %v", want)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// The checkpoint carries the full durable state: the original base
	// files can vanish.
	if err := os.Remove(graphPath); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(indexPath); err != nil {
		t.Fatal(err)
	}
	db2, err := pathdb.OpenDurable(graphPath, indexPath, opts, dopts)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := queryNames(t, db2, "mentors/mentors"); !slices.Equal(got, want) {
		t.Fatalf("after checkpoint recovery: %v, want %v", got, want)
	}
}

// TestDurableCrashWindowSnapshots snapshots the durability directory
// after every operation of a mixed batch/compact workload and reopens
// each snapshot: every one must recover to exactly the batches
// acknowledged at snapshot time, across all strategies — the
// crash-at-any-operation differential.
func TestDurableCrashWindowSnapshots(t *testing.T) {
	const seed = 25
	dir := t.TempDir()
	batches := durableBatches(seed, 5, 18)
	db := buildDurableT(t, seed, dir, pathdb.DurabilityOptions{SpillEntries: 200})

	type snapshot struct {
		dir     string
		applied int
	}
	var snaps []snapshot
	snap := func(applied int) {
		sd := t.TempDir()
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, ent := range ents {
			data, err := os.ReadFile(filepath.Join(dir, ent.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(sd, ent.Name()), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		snaps = append(snaps, snapshot{sd, applied})
	}

	for i, b := range batches {
		if err := db.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
		snap(i + 1)
		if i == 2 {
			if err := db.Compact(); err != nil {
				t.Fatal(err)
			}
			snap(i + 1)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	oracles := make(map[int]*pathdb.DB)
	for _, s := range snaps {
		if oracles[s.applied] == nil {
			oracles[s.applied] = prefixOracle(t, seed, batches, s.applied)
		}
	}
	for i, s := range snaps {
		db2 := buildDurableT(t, seed, s.dir, pathdb.DurabilityOptions{SpillEntries: 200})
		checkAllStrategies(t, db2, oracles[s.applied], fmt.Sprintf("snapshot %d (%d batches)", i, s.applied))
		db2.Close()
	}
}

// TestDurableWALRecordShape pins the on-disk record stream: batches are
// framed in order with ascending sequence numbers and the epochs they
// produced, so `rpq wal` and recovery agree on the log's meaning.
func TestDurableWALRecordShape(t *testing.T) {
	const seed = 26
	dir := t.TempDir()
	batches := durableBatches(seed, 3, 10)
	db := buildDurableT(t, seed, dir, pathdb.DurabilityOptions{SpillEntries: -1})
	for _, b := range batches {
		if err := db.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	lg, recs, err := wal.Open(filepath.Join(dir, pathdb.WALFileName), false)
	if err != nil {
		t.Fatal(err)
	}
	defer lg.Close()
	if len(recs) != len(batches) {
		t.Fatalf("log holds %d records, want %d", len(recs), len(batches))
	}
	var lastEpoch uint64
	for i, r := range recs {
		if r.Type != wal.TypeBatch || r.Seq != uint64(i+1) {
			t.Fatalf("record %d: type=%d seq=%d", i, r.Type, r.Seq)
		}
		br, err := wal.DecodeBatch(r.Payload)
		if err != nil {
			t.Fatal(err)
		}
		// Epochs strictly ascend but are not dense in batch count: tier
		// merges between batches bump the epoch without logging anything.
		if br.Epoch <= lastEpoch || len(br.Edges) != len(batches[i]) {
			t.Fatalf("record %d: epoch=%d (after %d) edges=%d", i, br.Epoch, lastEpoch, len(br.Edges))
		}
		lastEpoch = br.Epoch
	}
}
